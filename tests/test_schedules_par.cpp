// Distributed schedules (Listings 4, 8, 10 and the hybrid) validated
// in Real mode against the sequential reference, plus checks of the
// memory/communication properties the paper claims for each.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <tuple>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "core/schedules_seq.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace fit;
using runtime::Cluster;
using runtime::ExecutionMode;
using runtime::MachineConfig;

MachineConfig test_machine(std::size_t nodes, std::size_t rpn,
                           double mem_per_node = 64e6) {
  MachineConfig m;
  m.name = "test";
  m.n_nodes = nodes;
  m.ranks_per_node = rpn;
  m.mem_per_node_bytes = mem_per_node;
  m.flops_per_rank = 1e9;
  m.integrals_per_sec = 1e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 1e-6;
  m.local_bandwidth_bps = 1e10;
  return m;
}

struct ParCase {
  std::size_t n, s, ranks, tile, tile_l;
};

class ParSchedules : public ::testing::TestWithParam<ParCase> {
 protected:
  core::Problem make() {
    const auto c = GetParam();
    return core::make_problem(
        chem::custom_molecule("par", c.n, static_cast<unsigned>(c.s),
                              17 * c.n + c.s));
  }
  core::ParOptions options() {
    const auto c = GetParam();
    core::ParOptions o;
    o.tile = c.tile;
    o.tile_l = c.tile_l;
    return o;
  }
  Cluster cluster() {
    return Cluster(test_machine(2, GetParam().ranks / 2),
                   ExecutionMode::Real);
  }
};

TEST_P(ParSchedules, UnfusedMatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto cl = cluster();
  auto r = core::unfused_par_transform(p, cl, options());
  ASSERT_TRUE(r.c.has_value());
  EXPECT_LT(r.c->max_abs_diff(ref), 1e-9);
  EXPECT_GT(r.stats.flops, 0.0);
}

TEST_P(ParSchedules, FusedMatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto cl = cluster();
  auto r = core::fused_par_transform(p, cl, options());
  ASSERT_TRUE(r.c.has_value());
  EXPECT_LT(r.c->max_abs_diff(ref), 1e-9);
}

TEST_P(ParSchedules, FusedInnerMatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto cl = cluster();
  auto r = core::fused_inner_par_transform(p, cl, options());
  ASSERT_TRUE(r.c.has_value());
  EXPECT_LT(r.c->max_abs_diff(ref), 1e-9);
}

TEST_P(ParSchedules, HybridMatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto cl = cluster();
  auto r = core::hybrid_transform(p, cl, options());
  ASSERT_TRUE(r.c.has_value());
  EXPECT_LT(r.c->max_abs_diff(ref), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParSchedules,
    ::testing::Values(ParCase{8, 1, 2, 4, 2}, ParCase{8, 2, 4, 3, 4},
                      ParCase{12, 4, 4, 4, 4}, ParCase{12, 1, 6, 5, 3},
                      ParCase{16, 8, 8, 4, 8}, ParCase{10, 2, 2, 10, 10}));

// ---- Shared-basis batched schedules -----------------------------------

TEST(Batched, MembersBitIdenticalToSoloRuns) {
  auto p = core::make_problem(chem::custom_molecule("batch", 12, 2, 611));
  const auto bs = core::batch_member_bs(p, 3);
  ASSERT_EQ(bs.size(), 3u);
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 4;

  Cluster cb(test_machine(2, 2), ExecutionMode::Real);
  auto ru = core::batched_unfused_par_transform(p, bs, cb, opt);
  Cluster cf(test_machine(2, 2), ExecutionMode::Real);
  auto rf = core::batched_fused_inner_par_transform(p, bs, cf, opt);
  ASSERT_EQ(ru.c.size(), 3u);
  ASSERT_EQ(rf.c.size(), 3u);

  for (std::size_t m = 0; m < bs.size(); ++m) {
    // A solo problem whose B is this member's coefficient set.
    auto pm = core::make_problem(p.molecule);
    pm.b = bs[m];
    Cluster su(test_machine(2, 2), ExecutionMode::Real);
    auto solo_u = core::unfused_par_transform(pm, su, opt);
    Cluster sf(test_machine(2, 2), ExecutionMode::Real);
    auto solo_f = core::fused_inner_par_transform(pm, sf, opt);
    ASSERT_TRUE(ru.c[m].has_value());
    ASSERT_TRUE(rf.c[m].has_value());
    ASSERT_TRUE(solo_u.c.has_value());
    ASSERT_TRUE(solo_f.c.has_value());
    EXPECT_EQ(ru.c[m]->max_abs_diff(*solo_u.c), 0.0)
        << "unfused member " << m;
    EXPECT_EQ(rf.c[m]->max_abs_diff(*solo_f.c), 0.0)
        << "fused-inner member " << m;
  }
}

TEST(Batched, IntegralEvaluationIsPaidOncePerBatch) {
  auto p = core::make_problem(chem::custom_molecule("batch", 12, 2, 612));
  const auto bs = core::batch_member_bs(p, 4);
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 4;

  Cluster solo(test_machine(2, 2), ExecutionMode::Simulate);
  auto rs = core::unfused_par_transform(p, solo, opt);
  Cluster batch(test_machine(2, 2), ExecutionMode::Simulate);
  auto rb = core::batched_unfused_par_transform(p, bs, batch, opt);

  // A is filled once for the whole batch, so the batch evaluates
  // exactly as many integrals as one solo run — while doing ~4x the
  // contraction flops.
  EXPECT_DOUBLE_EQ(rb.stats.integral_evals, rs.stats.integral_evals);
  EXPECT_GT(rb.stats.flops, 3.5 * rs.stats.flops);

  // Same invariant for the fused-inner batch (per-slice fills).
  Cluster solo_f(test_machine(2, 2), ExecutionMode::Simulate);
  auto rsf = core::fused_inner_par_transform(p, solo_f, opt);
  Cluster batch_f(test_machine(2, 2), ExecutionMode::Simulate);
  auto rbf = core::batched_fused_inner_par_transform(p, bs, batch_f, opt);
  EXPECT_DOUBLE_EQ(rbf.stats.integral_evals, rsf.stats.integral_evals);
}

TEST(Batched, BatchedBeatsSequentialAndReportsMemberCompletion) {
  auto p = core::make_problem(chem::custom_molecule("batch", 12, 2, 613));
  const std::size_t count = 4;
  const auto bs = core::batch_member_bs(p, count);
  core::ParOptions opt;
  opt.tile = 4;
  opt.tile_l = 4;

  Cluster batch(test_machine(2, 2), ExecutionMode::Simulate);
  auto rb = core::batched_unfused_par_transform(p, bs, batch, opt);
  ASSERT_EQ(rb.member_done_s.size(), count);
  for (std::size_t m = 1; m < count; ++m)
    EXPECT_GT(rb.member_done_s[m], rb.member_done_s[m - 1]);

  // Sequential baseline: each member as its own full transform (A
  // refilled every time).
  double sequential = 0;
  for (std::size_t m = 0; m < count; ++m) {
    auto pm = core::make_problem(p.molecule);
    pm.b = bs[m];
    Cluster cl(test_machine(2, 2), ExecutionMode::Simulate);
    sequential += core::unfused_par_transform(pm, cl, opt).stats.sim_time;
  }
  EXPECT_LT(rb.stats.sim_time, sequential);

  // Fused-inner batch: no member is done before the last slice.
  Cluster bf(test_machine(2, 2), ExecutionMode::Simulate);
  auto rbf = core::batched_fused_inner_par_transform(p, bs, bf, opt);
  ASSERT_EQ(rbf.member_done_s.size(), count);
  for (double d : rbf.member_done_s)
    EXPECT_DOUBLE_EQ(d, rbf.member_done_s.front());
}

TEST(Batched, SingleMemberBatchMatchesPlainSchedules) {
  auto p = core::make_problem(chem::custom_molecule("batch", 10, 2, 614));
  const auto bs = core::batch_member_bs(p, 1);
  core::ParOptions opt;
  opt.tile = 5;
  opt.tile_l = 5;

  Cluster c1(test_machine(1, 2), ExecutionMode::Real);
  auto solo = core::fused_inner_par_transform(p, c1, opt);
  Cluster c2(test_machine(1, 2), ExecutionMode::Real);
  auto batch = core::batched_fused_inner_par_transform(p, bs, c2, opt);
  ASSERT_TRUE(solo.c.has_value());
  ASSERT_TRUE(batch.c[0].has_value());
  EXPECT_EQ(batch.c[0]->max_abs_diff(*solo.c), 0.0);
  // Identical modeled work too: same phases, same claims, same bytes.
  EXPECT_DOUBLE_EQ(batch.stats.sim_time, solo.stats.sim_time);
  EXPECT_DOUBLE_EQ(batch.stats.remote_bytes, solo.stats.remote_bytes);
}

TEST(ParProperties, FusedPeakMemoryFarBelowUnfused) {
  // The reason the fused schedule exists: its global high-water mark
  // is ~|C| + O(n^3 Tl) while unfused holds ~3n^4/4.
  auto p = core::make_problem(chem::custom_molecule("mem", 16, 1, 5));
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 2;
  Cluster cu(test_machine(2, 2), ExecutionMode::Simulate);
  auto ru = core::unfused_par_transform(p, cu, o);
  Cluster cf(test_machine(2, 2), ExecutionMode::Simulate);
  auto rf = core::fused_par_transform(p, cf, o);
  Cluster cfi(test_machine(2, 2), ExecutionMode::Simulate);
  auto rfi = core::fused_inner_par_transform(p, cfi, o);
  EXPECT_LT(rf.stats.peak_global_bytes, 0.6 * ru.stats.peak_global_bytes);
  EXPECT_LT(rfi.stats.peak_global_bytes, rf.stats.peak_global_bytes);
}

TEST(ParProperties, FusedInnerMovesFewerBytesThanFused) {
  // Listing 10 eliminates the distributed O1 and O3 slice traffic.
  auto p = core::make_problem(chem::custom_molecule("comm", 24, 1, 5));
  core::ParOptions o;
  o.tile = 6;
  o.tile_l = 4;
  Cluster cf(test_machine(4, 4), ExecutionMode::Simulate);
  auto rf = core::fused_par_transform(p, cf, o);
  Cluster cfi(test_machine(4, 4), ExecutionMode::Simulate);
  auto rfi = core::fused_inner_par_transform(p, cfi, o);
  const double traffic_f = rf.stats.remote_bytes + rf.stats.local_bytes;
  const double traffic_fi = rfi.stats.remote_bytes + rfi.stats.local_bytes;
  EXPECT_LT(traffic_fi, 0.75 * traffic_f);
}

TEST(ParProperties, SimulateAndRealChargeIdenticalCounters) {
  auto p = core::make_problem(chem::custom_molecule("modes", 12, 2, 5));
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 3;
  o.gather_result = false;
  Cluster cr(test_machine(2, 2), ExecutionMode::Real);
  auto rr = core::fused_inner_par_transform(p, cr, o);
  Cluster cs(test_machine(2, 2), ExecutionMode::Simulate);
  auto rs = core::fused_inner_par_transform(p, cs, o);
  EXPECT_DOUBLE_EQ(rr.stats.flops, rs.stats.flops);
  EXPECT_DOUBLE_EQ(rr.stats.remote_bytes, rs.stats.remote_bytes);
  EXPECT_DOUBLE_EQ(rr.stats.integral_evals, rs.stats.integral_evals);
  EXPECT_DOUBLE_EQ(rr.stats.peak_global_bytes, rs.stats.peak_global_bytes);
  EXPECT_NEAR(rr.stats.sim_time, rs.stats.sim_time, 1e-12);
}

TEST(ParProperties, AlphaParallelIncreasesATraffic) {
  // Sec. 7.3: parallelizing alpha multiplies the A communication.
  auto p = core::make_problem(chem::custom_molecule("alpha", 24, 1, 5));
  core::ParOptions o1;
  o1.tile = 4;
  o1.tile_l = 4;
  o1.alpha_parallel = 1;
  core::ParOptions o4 = o1;
  o4.alpha_parallel = 4;
  Cluster c1(test_machine(4, 6), ExecutionMode::Simulate);
  auto r1 = core::fused_inner_par_transform(p, c1, o1);
  Cluster c4(test_machine(4, 6), ExecutionMode::Simulate);
  auto r4 = core::fused_inner_par_transform(p, c4, o4);
  const double t1 = r1.stats.remote_bytes + r1.stats.local_bytes;
  const double t4 = r4.stats.remote_bytes + r4.stats.local_bytes;
  // Only the A portion of the traffic replicates (O2/C traffic is
  // unchanged), so total growth is material but sublinear in n_ac.
  EXPECT_GT(t4, 1.25 * t1);
}

TEST(ParProperties, UnfusedOomsWhereFusedRuns) {
  // The headline capability claim at miniature scale: pick a memory
  // budget between the fused and unfused footprints.
  auto p = core::make_problem(chem::custom_molecule("oom", 24, 4, 5));
  const auto sz = p.sizes();
  // Budget: 5x the output size — far below the ~3n^4/4 intermediates
  // but enough for C plus the O(n^3 Tl) fused slices.
  const double budget = 8.0 * 5.0 * static_cast<double>(sz.c);
  ASSERT_LT(budget, 8.0 * static_cast<double>(sz.unfused_peak()));
  core::ParOptions o;
  o.tile = 6;
  o.tile_l = 2;
  o.gather_result = false;
  auto machine = test_machine(2, 2, budget / 2);  // 2 nodes
  Cluster cu(machine, ExecutionMode::Simulate);
  EXPECT_THROW(core::unfused_par_transform(p, cu, o), fit::OutOfMemoryError);
  Cluster cf(machine, ExecutionMode::Simulate);
  EXPECT_NO_THROW(core::fused_inner_par_transform(p, cf, o));
}

TEST(ParProperties, HybridPicksByMemory) {
  auto p = core::make_problem(chem::custom_molecule("hyb", 16, 2, 5));
  const auto sz = p.sizes();
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 2;
  o.gather_result = false;
  // Plenty of memory: hybrid must choose unfused.
  Cluster big(test_machine(2, 2, 64e6), ExecutionMode::Simulate);
  auto rb = core::hybrid_transform(p, big, o);
  EXPECT_EQ(rb.stats.schedule, "hybrid(unfused)");
  // Tight memory: hybrid must choose the fused-inner schedule.
  const double tight = 8.0 * 4.0 * static_cast<double>(sz.c) / 2.0;
  Cluster small(test_machine(2, 2, tight), ExecutionMode::Simulate);
  auto rs = core::hybrid_transform(p, small, o);
  EXPECT_EQ(rs.stats.schedule, "hybrid(fused-inner)");
}

TEST(ParProperties, FusedFlopOverheadIsAboutOnePointFive) {
  auto p = core::make_problem(chem::custom_molecule("flp", 24, 1, 5));
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  o.gather_result = false;
  Cluster cu(test_machine(2, 2), ExecutionMode::Simulate);
  auto ru = core::unfused_par_transform(p, cu, o);
  Cluster cf(test_machine(2, 2), ExecutionMode::Simulate);
  auto rf = core::fused_inner_par_transform(p, cf, o);
  const double ratio = rf.stats.flops / ru.stats.flops;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 1.9);
}

TEST(ParProperties, ImbalanceReportedAboveOne) {
  auto p = core::make_problem(chem::custom_molecule("imb", 16, 1, 5));
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  o.gather_result = false;
  Cluster cl(test_machine(2, 4), ExecutionMode::Simulate);
  auto r = core::fused_inner_par_transform(p, cl, o);
  EXPECT_GE(r.stats.worst_imbalance, 1.0);
  EXPECT_GT(r.stats.n_phases, 4u);
  EXPECT_GT(r.stats.sim_time, 0.0);
}

TEST(ParProperties, NegativeCounterBatchEnvThrowsBeforeTheRun) {
  // Regression: FOURINDEX_COUNTER_BATCH=-4 used to warn and run the
  // whole transform with the default batch; the strict path raises
  // the typed parse error before any phase executes.
  auto p = core::make_problem(chem::custom_molecule("envneg", 10, 2, 175));
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  o.gather_result = false;
  ::setenv("FOURINDEX_COUNTER_BATCH", "-4", 1);
  Cluster cl(test_machine(2, 2), ExecutionMode::Simulate);
  EXPECT_THROW(core::fused_inner_par_transform(p, cl, o), fit::ParseError);
  ::unsetenv("FOURINDEX_COUNTER_BATCH");
  Cluster cl2(test_machine(2, 2), ExecutionMode::Simulate);
  EXPECT_TRUE(core::fused_inner_par_transform(p, cl2, o).stats.sim_time >
              0.0);
}

}  // namespace

// ---- NWChem baseline models -----------------------------------------

#include "core/schedules_baseline.hpp"

namespace {

TEST(Baselines, NwchemUnfusedMatchesReference) {
  auto p = core::make_problem(chem::custom_molecule("bl1", 10, 2, 5));
  auto ref = core::reference_transform(p);
  Cluster cl(test_machine(2, 2), ExecutionMode::Real);
  core::ParOptions o;
  o.tile = 4;
  auto r = core::nwchem_unfused_par_transform(p, cl, o);
  ASSERT_TRUE(r.c.has_value());
  EXPECT_LT(r.c->max_abs_diff(ref), 1e-9);
}

TEST(Baselines, NwchemRecomputeMatchesReference) {
  auto p = core::make_problem(chem::custom_molecule("bl2", 10, 2, 5));
  auto ref = core::reference_transform(p);
  Cluster cl(test_machine(2, 2), ExecutionMode::Real);
  core::ParOptions o;
  o.tile = 4;
  auto r = core::nwchem_recompute_par_transform(p, cl, o);
  ASSERT_TRUE(r.c.has_value());
  EXPECT_LT(r.c->max_abs_diff(ref), 1e-9);
}

TEST(Baselines, NwchemUnfusedPeakExceedsOurUnfused) {
  // Keeping all five tensors live costs ~2x the eager-free peak.
  auto p = core::make_problem(chem::custom_molecule("bl3", 20, 1, 5));
  core::ParOptions o;
  o.tile = 5;
  o.gather_result = false;
  Cluster c1(test_machine(2, 2), ExecutionMode::Simulate);
  auto ours = core::unfused_par_transform(p, c1, o);
  Cluster c2(test_machine(2, 2), ExecutionMode::Simulate);
  auto theirs = core::nwchem_unfused_par_transform(p, c2, o);
  EXPECT_GT(theirs.stats.peak_global_bytes,
            1.5 * ours.stats.peak_global_bytes);
}

TEST(Baselines, RecomputeUsesTinyGlobalMemoryButManyIntegrals) {
  auto p = core::make_problem(chem::custom_molecule("bl4", 20, 1, 5));
  core::ParOptions o;
  o.tile = 5;
  o.gather_result = false;
  Cluster c1(test_machine(2, 2), ExecutionMode::Simulate);
  auto rec = core::nwchem_recompute_par_transform(p, c1, o);
  Cluster c2(test_machine(2, 2), ExecutionMode::Simulate);
  auto fus = core::fused_inner_par_transform(p, c2, o);
  // Global memory: only C (plus nothing else) for recompute.
  EXPECT_LT(rec.stats.peak_global_bytes, fus.stats.peak_global_bytes);
  // But many times the integral work (block-level recomputation).
  EXPECT_GT(rec.stats.integral_evals, 2.0 * fus.stats.integral_evals);
  EXPECT_GT(rec.stats.sim_time, fus.stats.sim_time);
}

}  // namespace

TEST(ParProperties, BalancedAlphaChunkingCorrectAndFlatter) {
  // Sec. 7.3 alternative load balancing: greedy weight-balanced alpha
  // chunks produce the same result with no more imbalance than the
  // contiguous baseline in the fused-12 phase.
  auto p = core::make_problem(chem::custom_molecule("bal", 16, 1, 5));
  auto ref = core::reference_transform(p);

  core::ParOptions contiguous;
  contiguous.tile = 2;
  contiguous.tile_l = 4;
  contiguous.alpha_parallel = 4;
  contiguous.alpha_chunking = core::ParOptions::AlphaChunking::Contiguous;
  core::ParOptions balanced = contiguous;
  balanced.alpha_chunking = core::ParOptions::AlphaChunking::Balanced;

  Cluster c1(test_machine(2, 4), ExecutionMode::Real);
  auto r1 = core::fused_inner_par_transform(p, c1, contiguous);
  Cluster c2(test_machine(2, 4), ExecutionMode::Real);
  auto r2 = core::fused_inner_par_transform(p, c2, balanced);
  ASSERT_TRUE(r1.c && r2.c);
  EXPECT_LT(r1.c->max_abs_diff(ref), 1e-9);
  EXPECT_LT(r2.c->max_abs_diff(ref), 1e-9);

  // Imbalance of the fused12 phases specifically.
  auto fused12_imbalance = [](const Cluster& cl) {
    double w = 1.0;
    for (const auto& ph : cl.phases())
      if (ph.label.rfind("fused12", 0) == 0)
        w = std::max(w, ph.imbalance);
    return w;
  };
  EXPECT_LE(fused12_imbalance(c2), fused12_imbalance(c1) + 1e-9);
}

// ---- nonblocking overlap ablation -----------------------------------

#include "runtime/faults.hpp"

namespace {

TEST(Overlap, AllSchedulesBitIdenticalWithOverlapOnAndOff) {
  // The pipelines issue the same GA operations in the same order and
  // the GA layer moves data eagerly at issue, so the transform result
  // must not merely be close — it must be the same bits.
  auto p = core::make_problem(chem::custom_molecule("ovl", 12, 2, 5));
  core::ParOptions on;
  on.tile = 4;
  on.tile_l = 3;
  on.overlap = true;
  core::ParOptions off = on;
  off.overlap = false;
  using Schedule = core::ParResult (*)(const core::Problem&, Cluster&,
                                       const core::ParOptions&);
  const Schedule schedules[] = {core::unfused_par_transform,
                                core::fused_par_transform,
                                core::fused_inner_par_transform};
  for (Schedule sched : schedules) {
    Cluster c1(test_machine(2, 2), ExecutionMode::Real);
    auto r1 = sched(p, c1, on);
    Cluster c2(test_machine(2, 2), ExecutionMode::Real);
    auto r2 = sched(p, c2, off);
    ASSERT_TRUE(r1.c && r2.c);
    EXPECT_EQ(r1.c->max_abs_diff(*r2.c), 0.0) << r1.stats.schedule;
    // Overlap changes only the clock model, never the traffic.
    EXPECT_DOUBLE_EQ(r1.stats.remote_bytes, r2.stats.remote_bytes);
    EXPECT_DOUBLE_EQ(r1.stats.flops, r2.stats.flops);
  }
}

TEST(Overlap, HidesCommOnACommBoundMachine) {
  // Slow wire, fast cores: the double-buffered pipelines must hide a
  // nonzero amount of transfer time and finish sooner than the
  // blocking ablation baseline.
  auto machine = test_machine(2, 2);
  machine.net_bandwidth_bps = 2e8;  // comm-bound
  auto p = core::make_problem(chem::custom_molecule("cb", 16, 1, 5));
  core::ParOptions on;
  on.tile = 4;
  on.tile_l = 4;
  on.gather_result = false;
  core::ParOptions off = on;
  off.overlap = false;
  for (auto sched :
       {core::unfused_par_transform, core::fused_inner_par_transform}) {
    Cluster c1(machine, ExecutionMode::Simulate);
    auto r1 = sched(p, c1, on);
    Cluster c2(machine, ExecutionMode::Simulate);
    auto r2 = sched(p, c2, off);
    EXPECT_GT(r1.stats.overlapped_seconds, 0.0) << r1.stats.schedule;
    EXPECT_LT(r1.stats.sim_time, r2.stats.sim_time) << r1.stats.schedule;
    // The blocking baseline by definition hides nothing.
    EXPECT_EQ(r2.stats.overlapped_seconds, 0.0) << r2.stats.schedule;
    // Exposed + overlapped together account for no more than the whole
    // transfer time, and the overlap run exposes strictly less.
    EXPECT_LT(r1.stats.exposed_seconds, r2.stats.exposed_seconds)
        << r1.stats.schedule;
  }
}

TEST(Overlap, FaultStormRecoveryStaysBitIdentical) {
  // The acceptance gate for the epoch/sync discipline: under a seeded
  // storm of rank kills and flaky one-sided ops, the overlap and
  // blocking runs see the *same* fault sequence (the pipelines issue
  // GA ops in the same order, so the op-sequence RNG draws align) and
  // either both recover to the exact reference bits or both fail
  // cleanly.
  std::uint64_t seed = 71;
  if (const char* env = std::getenv("FOURINDEX_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);

  auto p = core::make_problem(chem::custom_molecule("storm", 8, 1, 5));
  core::ParOptions on;
  on.tile = 4;
  on.overlap = true;
  core::ParOptions off = on;
  off.overlap = false;

  Cluster clean(test_machine(2, 2), ExecutionMode::Real);
  const auto ref = core::unfused_par_transform(p, clean, off);

  auto storm_machine = test_machine(2, 2);
  storm_machine.disk_bandwidth_bps = 1e9;  // recovery needs a PFS
  storm_machine.disk_latency_s = 1e-3;
  auto stormy = [&](const core::ParOptions& o)
      -> std::optional<tensor::PackedC> {
    Cluster cl(storm_machine, ExecutionMode::Real);
    runtime::CheckpointConfig cfg;
    cfg.max_retries = 5;
    cl.enable_recovery(cfg);
    runtime::FaultInjector inj(seed);
    inj.set_kill_prob(0.02);
    inj.set_op_failure_prob(0.002);
    cl.install_faults(inj);
    try {
      auto r = core::unfused_par_transform(p, cl, o);
      return std::move(r.c);
    } catch (const FaultError&) {
      return std::nullopt;
    }
  };
  const auto got_on = stormy(on);
  const auto got_off = stormy(off);
  ASSERT_EQ(got_on.has_value(), got_off.has_value());
  if (got_on) {
    EXPECT_EQ(got_on->max_abs_diff(*ref.c), 0.0);
    EXPECT_EQ(got_off->max_abs_diff(*ref.c), 0.0);
  }
}

}  // namespace

TEST(ParProperties, DistributedCStorageTracksExactPackedSize) {
  // With irrep-aligned tilings, the spatial tile filter is exact: the
  // distributed C footprint stays within the diagonal-tile padding of
  // the exact packed size n^4/(4s), rather than collapsing to n^4/4.
  for (unsigned s : {1u, 4u, 8u}) {
    auto p = core::make_problem(chem::custom_molecule("cstore", 48, s, 3));
    const auto sz = p.sizes();
    core::ParOptions o;
    o.tile = 6;
    o.tile_l = 48;  // single slice: peak == C + one slice set
    o.gather_result = false;
    Cluster cl(test_machine(2, 2, 1e9), ExecutionMode::Simulate);
    auto r = core::fused_inner_par_transform(p, cl, o);
    const double exact_c = 8.0 * double(sz.c);
    EXPECT_GT(r.stats.peak_global_bytes, exact_c);
    // C + the n^3-scale slice arrays, with < 2.2x padding overall.
    const double slices = 8.0 * 2.0 * double(48 * 48 * 48 * 48);
    EXPECT_LT(r.stats.peak_global_bytes, 2.2 * exact_c + slices) << s;
  }
}
