// Cross-validation of every sequential schedule against the dense
// reference transform, plus checks that each schedule exhibits the
// flop/memory characteristics the paper's listings annotate.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_seq.hpp"
#include "tensor/pairs.hpp"

namespace {

using namespace fit;

double tol(std::size_t n) { return 1e-10 * static_cast<double>(n * n); }

class SeqSchedules
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {
 protected:
  core::Problem make() {
    const auto [n, s] = GetParam();
    return core::make_problem(
        chem::custom_molecule("t", n, s, 31 * n + s));
  }
};

TEST_P(SeqSchedules, UnfusedMatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto got = core::unfused_transform(p);
  EXPECT_LT(got.max_abs_diff(ref), tol(p.n()));
}

TEST_P(SeqSchedules, Fused1234MatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto got = core::fused1234_transform(p);
  EXPECT_LT(got.max_abs_diff(ref), tol(p.n()));
}

TEST_P(SeqSchedules, Fused12_34MatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto got = core::fused12_34_transform(p);
  EXPECT_LT(got.max_abs_diff(ref), tol(p.n()));
}

TEST_P(SeqSchedules, Fused12_34OnTheFlyMatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto got = core::fused12_34_transform(p, nullptr, /*materialize_a=*/false);
  EXPECT_LT(got.max_abs_diff(ref), tol(p.n()));
}

TEST_P(SeqSchedules, RecomputeMatchesReference) {
  auto p = make();
  auto ref = core::reference_transform(p);
  auto got = core::recompute_transform(p);
  EXPECT_LT(got.max_abs_diff(ref), tol(p.n()));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSymmetries, SeqSchedules,
    ::testing::Values(std::make_tuple(4, 1u), std::make_tuple(6, 1u),
                      std::make_tuple(6, 2u), std::make_tuple(8, 1u),
                      std::make_tuple(8, 4u), std::make_tuple(10, 2u),
                      std::make_tuple(12, 4u), std::make_tuple(16, 8u)));

TEST(SeqSchedules, ReferenceMatchesDirectO8) {
  // The dense O(n^5) reference agrees with the literal O(n^8) sum.
  for (unsigned s : {1u, 2u}) {
    auto p = core::make_problem(chem::custom_molecule("tiny", 5, s, 11));
    auto ref = core::reference_transform(p);
    auto direct = core::reference_direct_o8(p);
    EXPECT_LT(ref.max_abs_diff(direct), 1e-10);
  }
}

TEST(SeqSchedules, SpatiallyForbiddenDenseEntriesVanish) {
  // The transform must *produce* the spatial sparsity, not merely
  // assume it: dense-reference entries on forbidden quadruples are
  // numerically zero.
  auto p = core::make_problem(chem::custom_molecule("sym", 8, 4, 5));
  auto dense = core::reference_dense(p);
  for (std::size_t a = 0; a < 8; ++a)
    for (std::size_t b = 0; b < 8; ++b)
      for (std::size_t c = 0; c < 8; ++c)
        for (std::size_t d = 0; d < 8; ++d)
          if (!p.irreps.allowed(a, b, c, d)) {
            EXPECT_LT(std::fabs(dense(a, b, c, d)), 1e-12);
          }
}

TEST(SeqSchedules, FlopRatioFusedVsUnfusedIsAboutOnePointFive) {
  // Paper Sec. 7.4: breaking the (k,l) symmetry makes the fully fused
  // schedule perform ~1.5x the arithmetic of the unfused schedule.
  auto p = core::make_problem(chem::custom_molecule("flops", 24, 1, 3));
  core::SeqStats su, sf;
  (void)core::unfused_transform(p, &su);
  (void)core::fused1234_transform(p, &sf);
  const double ratio = sf.flops / su.flops;
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 1.7);
}

TEST(SeqSchedules, RecomputeFlopsScaleAsN6) {
  // Listing 3 pays O(n^6) arithmetic; doubling n should multiply flops
  // by ~2^6 (up to lower-order terms), while unfused grows as n^5.
  auto p1 = core::make_problem(chem::custom_molecule("r1", 8, 1, 3));
  auto p2 = core::make_problem(chem::custom_molecule("r2", 16, 1, 3));
  core::SeqStats s1, s2;
  (void)core::recompute_transform(p1, &s1);
  (void)core::recompute_transform(p2, &s2);
  const double growth = s2.flops / s1.flops;
  EXPECT_GT(growth, 40.0);   // n^6 growth = 64, n^5 would be 32
  EXPECT_LT(growth, 80.0);
}

TEST(SeqSchedules, PeakMemoryOrdering) {
  // Listing annotations: unfused ~3n^4/4 > fused12/34 ~n^4/2 >
  // recompute ~n^3 and fused1234 ~|C| + O(n^3).
  auto p = core::make_problem(chem::custom_molecule("mem", 20, 1, 3));
  core::SeqStats su, s12, sr, sf;
  (void)core::unfused_transform(p, &su);
  (void)core::fused12_34_transform(p, &s12);
  (void)core::recompute_transform(p, &sr);
  (void)core::fused1234_transform(p, &sf);
  EXPECT_GT(su.peak_words, s12.peak_words);
  EXPECT_GT(s12.peak_words, sr.peak_words);
  EXPECT_GT(s12.peak_words, sf.peak_words);

  const double n4 = std::pow(20.0, 4);
  EXPECT_NEAR(static_cast<double>(su.peak_words) / (0.75 * n4), 1.0, 0.25);
  EXPECT_NEAR(static_cast<double>(s12.peak_words) / (0.5 * n4), 1.0, 0.25);
}

TEST(SeqSchedules, Fused1234PeakIsCPlusLowerOrder) {
  auto p = core::make_problem(chem::custom_molecule("memc", 24, 1, 3));
  core::SeqStats sf;
  (void)core::fused1234_transform(p, &sf);
  const auto sz = p.sizes();
  const double n3 = std::pow(24.0, 3);
  EXPECT_GE(sf.peak_words, sz.c);
  EXPECT_LE(static_cast<double>(sf.peak_words),
            static_cast<double>(sz.c) + 4.0 * n3);
}

TEST(SeqSchedules, RecomputeRedundantIntegralEvaluations) {
  // The recompute schedule re-generates integrals per output pair
  // block: far more engine evaluations than the single-pass schedules.
  auto p1 = core::make_problem(chem::custom_molecule("e1", 10, 1, 3));
  auto p2 = core::make_problem(chem::custom_molecule("e2", 10, 1, 3));
  core::SeqStats s1, s2;
  (void)core::unfused_transform(p1, &s1);
  (void)core::recompute_transform(p2, &s2);
  EXPECT_GT(s2.integral_evals, 10 * s1.integral_evals);
}

TEST(SeqSchedules, StatsArePopulated) {
  auto p = core::make_problem(chem::custom_molecule("st", 8, 1, 3));
  core::SeqStats s;
  (void)core::unfused_transform(p, &s);
  EXPECT_GT(s.flops, 0.0);
  EXPECT_GT(s.integral_evals, 0u);
  EXPECT_GT(s.peak_words, 0u);
  EXPECT_GE(s.wall_seconds, 0.0);
}

}  // namespace
