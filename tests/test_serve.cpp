// The persistent transform service: cost table/oracle behavior, the
// request-parse taxonomy, the four-way admission ladder, schedule-cache
// bit-identity, and the NDJSON wire layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/cost_oracle.hpp"
#include "serve/cost_table.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"

namespace {

using namespace fit;
using serve::Admission;
using serve::CostOracle;
using serve::CostTable;
using serve::Request;
using serve::Response;
using serve::TransformService;

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem + "." +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------- table

TEST(CostTable, InterpolatesInLogShapeAndClampsAtTheEnds) {
  CostTable t;
  t.add({"gemm", 1e6, 10e9, "test"});
  t.add({"gemm", 1e8, 20e9, "test"});

  // Exact samples come back exactly.
  EXPECT_DOUBLE_EQ(*t.estimate_rate("gemm", 1e6), 10e9);
  EXPECT_DOUBLE_EQ(*t.estimate_rate("gemm", 1e8), 20e9);
  // The geometric midpoint of the shapes is the arithmetic midpoint of
  // the rates (piecewise linear in log shape).
  EXPECT_NEAR(*t.estimate_rate("gemm", 1e7), 15e9, 1e-3);
  // Outside the sampled range but within the decade rule: clamped.
  EXPECT_DOUBLE_EQ(*t.estimate_rate("gemm", 3e5), 10e9);
  EXPECT_DOUBLE_EQ(*t.estimate_rate("gemm", 5e8), 20e9);
  // More than a decade away, or the wrong kind: no bucket, no guess.
  EXPECT_FALSE(t.estimate_rate("gemm", 1e4).has_value());
  EXPECT_FALSE(t.estimate_rate("link", 1e6).has_value());
  EXPECT_TRUE(t.has_bucket("gemm", 2e6));
  EXPECT_FALSE(t.has_bucket("gemm", 1e20));
}

TEST(CostTable, RemeasuringABucketOverwritesInsteadOfDuplicating) {
  CostTable t;
  t.add({"link", 512, 1e9, "old"});
  t.add({"link", 512, 3e9, "new"});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(*t.estimate_rate("link", 512), 3e9);
  EXPECT_EQ(t.samples()[0].origin, "new");
}

TEST(CostTable, RoundTripsThroughDiskAndRejectsMalformedDocuments) {
  CostTable t;
  t.add({"gemm", 2.5e7, 21.5e9, "bench_gemm"});
  t.add({"integrals", 46, 2e8, "bench"});
  const std::string path = temp_path("costs.json");
  ASSERT_TRUE(t.save(path));
  const CostTable back = CostTable::load(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(*back.estimate_rate("gemm", 2.5e7), 21.5e9);
  std::remove(path.c_str());

  EXPECT_THROW(CostTable::load("/nonexistent/costs.json"), ParseError);
  EXPECT_THROW(CostTable::from_json(obs::json::parse("{\"schema\":\"x\"}")),
               ParseError);
  EXPECT_THROW(
      CostTable::from_json(obs::json::parse(
          "{\"schema\":\"fourindex.costs/1\",\"samples\":"
          "[{\"kind\":\"gemm\",\"shape\":-1,\"rate\":1}]}")),
      ParseError);
}

// --------------------------------------------------------------- oracle

TEST(CostOracle, EmptyTableFallsBackToNominalRates) {
  const runtime::MachineConfig m = runtime::system_a(1);
  const CostOracle oracle;
  const core::PlanRates r = oracle.rates(m, 46, 4);
  EXPECT_EQ(r.source, "nominal");
  EXPECT_DOUBLE_EQ(r.flops_per_rank, m.flops_per_rank);
  EXPECT_DOUBLE_EQ(r.net_bandwidth_bps, m.net_bandwidth_bps);
  EXPECT_GT(oracle.fallbacks(), 0u);
}

TEST(CostOracle, BackedGemmBucketYieldsMeasuredRates) {
  const runtime::MachineConfig m = runtime::system_a(1);
  CostTable t;
  // Request shape for n=46, tile=4 is 2 * 46^3 * 4 ~ 7.8e5.
  t.add({"gemm", 8e5, 15e9, "test"});
  const CostOracle oracle(t);
  const core::PlanRates r = oracle.rates(m, 46, 4);
  EXPECT_EQ(r.source, "measured");
  EXPECT_NEAR(r.flops_per_rank, 15e9, 1e-3);
  // link/integrals buckets are absent: loud fallback to nominal.
  EXPECT_DOUBLE_EQ(r.net_bandwidth_bps, m.net_bandwidth_bps);
  EXPECT_GT(oracle.fallbacks(), 0u);
}

TEST(CostOracle, BrokenCostTableEnvIsARefusalNotADegrade) {
  const std::string path = temp_path("broken.json");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{not json", f);
  std::fclose(f);
  ::setenv("FOURINDEX_COST_TABLE", path.c_str(), 1);
  EXPECT_THROW(CostOracle::from_env(), ParseError);
  ::unsetenv("FOURINDEX_COST_TABLE");
  std::remove(path.c_str());
}

// ------------------------------------------------------- parse taxonomy

std::string parse_error_of(const std::string& json) {
  try {
    serve::parse_request(obs::json::parse(json));
  } catch (const ParseError& e) {
    return e.what();
  }
  return "";
}

TEST(ParseRequest, TaxonomyIsStable) {
  EXPECT_EQ(parse_error_of("[1,2]"), "request is not a JSON object");
  EXPECT_EQ(parse_error_of("{}"), "missing string field 'molecule'");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Benzene\"}"),
            "unknown molecule 'Benzene'");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Uracil\",\"system\":\"Q\"}"),
            "unknown system 'Q' (want A|B|C)");
  EXPECT_EQ(
      parse_error_of("{\"molecule\":\"Uracil\",\"balance\":\"chaotic\"}"),
      "unknown balance mode 'chaotic'");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Uracil\",\"nodes\":0}"),
            "field 'nodes' must be a positive number");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Uracil\",\"tile\":2.5}"),
            "field 'tile' must be a positive number");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"custom\"}"),
            "custom molecule needs field 'n' >= 2");

  const Request r = serve::parse_request(obs::json::parse(
      "{\"molecule\":\"custom\",\"n\":24,\"irrep_order\":2,"
      "\"nodes\":2,\"balance\":\"steal\",\"real\":true}"));
  EXPECT_EQ(r.custom_n, 24u);
  EXPECT_EQ(r.custom_s, 2u);
  EXPECT_EQ(r.n_nodes, 2u);
  EXPECT_EQ(r.balance, "steal");
  EXPECT_TRUE(r.real);
}

TEST(ParseRequest, MalformedLinesBecomeErrorResponsesNotExceptions) {
  TransformService svc{CostOracle{}};
  const Response bad_json = svc.submit_line("{oops");
  EXPECT_EQ(bad_json.admission, Admission::Error);
  EXPECT_FALSE(bad_json.error.empty());
  const Response bad_req = svc.submit_line("{\"molecule\":\"Benzene\"}");
  EXPECT_EQ(bad_req.admission, Admission::Error);
  EXPECT_EQ(bad_req.error, "unknown molecule 'Benzene'");
  EXPECT_EQ(svc.metrics().sum("serve.errors"), 2.0);
}

// ------------------------------------------------------ admission ladder

TEST(Admission, WalksAdmittedThroughDegradedToQueuedAndRejected) {
  TransformService::Options opt;
  opt.queue_depth = 1;
  TransformService svc{CostOracle{}, opt};

  // Hyperpolar on 4 SystemA nodes: the idle machine picks op1234.
  // plan_only reservations eat aggregate memory, so repeated identical
  // requests must walk the ladder monotonically downward: Admitted
  // (full fusion fits), Degraded (only a lower level fits), Queued
  // (nothing fits, queue has room), Rejected (queue full).
  Request r;
  r.molecule = "Hyperpolar";
  r.n_nodes = 4;
  r.plan_only = true;

  std::vector<Admission> transitions;
  Admission last = Admission::Error;
  std::uint64_t first_ticket = 0;
  for (int i = 0; i < 4096; ++i) {
    const Response rsp = svc.submit(r);
    if (rsp.admission != last) {
      transitions.push_back(rsp.admission);
      last = rsp.admission;
    }
    if (first_ticket == 0 && rsp.admission == Admission::Admitted)
      first_ticket = rsp.ticket;
    if (rsp.admission == Admission::Rejected) break;
  }
  const std::vector<Admission> want = {
      Admission::Admitted, Admission::Degraded, Admission::Queued,
      Admission::Rejected};
  EXPECT_EQ(transitions, want);
  EXPECT_GT(svc.reserved_bytes(), 0.0);
  EXPECT_EQ(svc.queued(), 1u);

  // Releasing the first (largest) reservation must retry the queue;
  // the parked request fits again and comes back non-queued.
  const double reserved_before = svc.reserved_bytes();
  const std::vector<Response> ran = svc.release(first_ticket);
  ASSERT_EQ(ran.size(), 1u);
  EXPECT_TRUE(ran[0].admission == Admission::Admitted ||
              ran[0].admission == Admission::Degraded);
  EXPECT_EQ(svc.queued(), 0u);
  EXPECT_LT(svc.reserved_bytes(), reserved_before + 1.0);
  EXPECT_GE(svc.metrics().sum("serve.released"), 1.0);

  // An unknown ticket is an error response, not a crash.
  const std::vector<Response> nope = svc.release(999999);
  ASSERT_EQ(nope.size(), 1u);
  EXPECT_EQ(nope[0].admission, Admission::Error);
}

TEST(Admission, ProblemBeyondTheIdleMachineIsRejectedOutright) {
  TransformService svc{CostOracle{}};
  Request r;
  r.molecule = "custom";
  r.custom_n = 1024;  // even unfused needs > SystemA x1's aggregate
  r.custom_s = 1;
  r.n_nodes = 1;
  r.plan_only = true;
  const Response rsp = svc.submit(r);
  EXPECT_EQ(rsp.admission, Admission::Rejected);
  EXPECT_NE(rsp.error.find("exceeds the idle machine"), std::string::npos);
  EXPECT_EQ(svc.queued(), 0u);
  EXPECT_EQ(svc.reserved_bytes(), 0.0);
}

// ------------------------------------------------- batches and tenants

TEST(ParseRequest, BatchAndTenantFieldsParse) {
  const Request r = serve::parse_request(obs::json::parse(
      "{\"molecule\":\"Uracil\",\"batch\":8,\"tenant\":\"groupA\"}"));
  EXPECT_EQ(r.batch, 8u);
  EXPECT_EQ(r.tenant, "groupA");
  // Defaults: a solo anonymous request.
  const Request d = serve::parse_request(
      obs::json::parse("{\"molecule\":\"Uracil\"}"));
  EXPECT_EQ(d.batch, 1u);
  EXPECT_TRUE(d.tenant.empty());
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Uracil\",\"batch\":0}"),
            "field 'batch' must be a positive number");
}

TEST(Batch, BatchedRequestAmortizesAndIsDeterministic) {
  TransformService svc{CostOracle{}};
  Request r;
  r.molecule = "custom";
  r.custom_n = 12;
  r.custom_s = 2;
  r.n_nodes = 1;
  r.tile = 4;
  r.tile_l = 4;
  r.real = true;

  const Response solo = svc.submit(r);
  ASSERT_EQ(solo.admission, Admission::Admitted);
  ASSERT_NE(solo.result_checksum, 0.0);

  Request rb = r;
  rb.batch = 3;
  const Response b1 = svc.submit(rb);
  ASSERT_EQ(b1.admission, Admission::Admitted);
  EXPECT_EQ(b1.batch, 3u);
  // The batch width is part of the fingerprint: no false sharing with
  // the solo entry.
  EXPECT_FALSE(b1.cache_hit);
  ASSERT_NE(b1.result_checksum, 0.0);
  EXPECT_NE(b1.result_checksum, solo.result_checksum);
  // Amortization: the A fill is paid once, so three members cost less
  // than three solo transforms (but more than one).
  EXPECT_LT(b1.sim_seconds, 3.0 * solo.sim_seconds);
  EXPECT_GT(b1.sim_seconds, solo.sim_seconds);

  // Warm replay of the batch is bit-identical.
  const Response b2 = svc.submit(rb);
  EXPECT_TRUE(b2.cache_hit);
  EXPECT_EQ(b2.result_checksum, b1.result_checksum);

  // A fresh service reproduces the same member fold: the batch result
  // is a pure function of the request.
  TransformService other{CostOracle{}};
  EXPECT_EQ(other.submit(rb).result_checksum, b1.result_checksum);

  EXPECT_GE(svc.metrics().sum("serve.batch_requests"), 2.0);
  EXPECT_GE(svc.metrics().sum("serve.batch_members"), 6.0);
}

TEST(Tenancy, RequestBeyondTheQuotaIsRejectedOutright) {
  TransformService::Options opt;
  opt.tenant_quota_bytes = 1024;  // far below any transform's need
  TransformService svc{CostOracle{}, opt};
  Request r;
  r.molecule = "custom";
  r.custom_n = 16;
  r.n_nodes = 1;
  r.plan_only = true;
  r.tenant = "small";
  const Response rsp = svc.submit(r);
  EXPECT_EQ(rsp.admission, Admission::Rejected);
  EXPECT_NE(rsp.error.find("exceeds the tenant quota"),
            std::string::npos);
  EXPECT_GE(svc.metrics().sum("serve.quota_rejected"), 1.0);
  EXPECT_EQ(svc.queued(), 0u);
  EXPECT_EQ(svc.reserved_bytes(), 0.0);
}

TEST(Tenancy, QuotaCapsEachTenantAndDrainRotatesAcrossThem) {
  Request r;
  r.molecule = "Hyperpolar";
  r.n_nodes = 4;
  r.plan_only = true;

  // Probe the reservation size of one admission on the idle machine.
  TransformService probe{CostOracle{}};
  ASSERT_EQ(probe.submit(r).admission, Admission::Admitted);
  const double need = probe.reserved_bytes();
  ASSERT_GT(need, 0.0);

  // Quota: one reservation per tenant, plus change too small for even
  // the most degraded fusion level.
  TransformService::Options opt;
  opt.queue_depth = 4;
  opt.tenant_quota_bytes = need + 8.0;
  TransformService svc{CostOracle{}, opt};

  Request ra = r;
  ra.tenant = "alice";
  Request rb = r;
  rb.tenant = "bob";

  const Response a1 = svc.submit(ra);
  ASSERT_EQ(a1.admission, Admission::Admitted);
  EXPECT_EQ(a1.tenant, "alice");
  // Alice's quota is now full: her next request queues even though the
  // machine has plenty of memory left.
  const Response a2 = svc.submit(ra);
  ASSERT_EQ(a2.admission, Admission::Queued);
  // Bob's quota is his own: he is admitted immediately.
  const Response b1 = svc.submit(rb);
  ASSERT_EQ(b1.admission, Admission::Admitted);
  const Response b2 = svc.submit(rb);
  ASSERT_EQ(b2.admission, Admission::Queued);
  EXPECT_LE(svc.tenant_reserved("alice"), opt.tenant_quota_bytes);
  EXPECT_LE(svc.tenant_reserved("bob"), opt.tenant_quota_bytes);

  // Queue order is [alice, bob]. Releasing bob's hold must run bob's
  // queued request even though alice's blocked head sits ahead of it —
  // the drain rotates across tenants instead of wedging FIFO.
  const auto ran = svc.release(b1.ticket);
  ASSERT_EQ(ran.size(), 1u);
  EXPECT_EQ(ran[0].tenant, "bob");
  EXPECT_TRUE(ran[0].admission == Admission::Admitted ||
              ran[0].admission == Admission::Degraded);
  EXPECT_EQ(svc.queued(), 1u);

  // Releasing alice's hold frees her parked request too.
  const auto ran2 = svc.release(a1.ticket);
  ASSERT_EQ(ran2.size(), 1u);
  EXPECT_EQ(ran2[0].tenant, "alice");
  EXPECT_EQ(svc.queued(), 0u);
}

// -------------------------------------------------------- schedule cache

TEST(ScheduleCache, RepeatedRequestHitsAndReplaysBitIdentically) {
  TransformService svc{CostOracle{}};
  Request r;
  r.molecule = "custom";
  r.custom_n = 12;
  r.custom_s = 2;
  r.n_nodes = 1;
  r.balance = "auto";
  r.tile = 4;
  r.tile_l = 4;
  r.real = true;

  const Response cold = svc.submit(r);
  ASSERT_EQ(cold.admission, Admission::Admitted);
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_NE(cold.result_checksum, 0.0);

  const Response warm = svc.submit(r);
  ASSERT_EQ(warm.admission, Admission::Admitted);
  EXPECT_TRUE(warm.cache_hit);
  // Bit-identical transform result: every balance mode writes each
  // output tile from exactly one task, so replaying the memoized
  // per-phase picks must reproduce the cold run's bytes exactly.
  EXPECT_EQ(warm.result_checksum, cold.result_checksum);
  EXPECT_EQ(warm.fusion, cold.fusion);

  EXPECT_GE(svc.metrics().sum("serve.cache_hits"), 1.0);
  EXPECT_EQ(svc.metrics().sum("serve.cache_misses"), 1.0);
  // The warm run replayed the Auto picks out of the memo: at least one
  // per-phase DES re-plan was skipped.
  EXPECT_GE(svc.metrics().sum("serve.des_skips"), 1.0);

  // A different balance mode is a different fingerprint — no false
  // sharing between schedules.
  Request other = r;
  other.balance = "static";
  const Response miss = svc.submit(other);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(miss.result_checksum, cold.result_checksum);
}

// ------------------------------------------------------------ wire layer

TEST(Server, SpeaksNdjsonOverAUnixSocket) {
  const std::string sock = temp_path("serve.sock");
  serve::Server server(TransformService{CostOracle{}}, sock);

  std::thread loop([&] { server.serve_forever(/*max_requests=*/4); });
  const std::string req =
      "{\"molecule\":\"custom\",\"n\":12,\"irrep_order\":2,\"nodes\":1,"
      "\"real\":true}";
  const obs::json::Value cold =
      obs::json::parse(serve::Server::request(sock, req));
  const obs::json::Value warm =
      obs::json::parse(serve::Server::request(sock, req));
  EXPECT_EQ(cold.find("outcome")->as_string(), "admitted");
  EXPECT_TRUE(warm.find("cache_hit")->as_bool());
  EXPECT_EQ(warm.find("result_checksum")->as_number(),
            cold.find("result_checksum")->as_number());

  const obs::json::Value stats =
      obs::json::parse(serve::Server::request(sock, "{\"verb\":\"stats\"}"));
  EXPECT_DOUBLE_EQ(
      stats.find("serve.cache_hits")->find("sum")->as_number(), 1.0);

  const obs::json::Value bye = obs::json::parse(
      serve::Server::request(sock, "{\"verb\":\"shutdown\"}"));
  EXPECT_EQ(bye.find("outcome")->as_string(), "shutdown");
  loop.join();
}

// ---- doc-as-test: the serving examples run verbatim ------------------
//
// README "Serving" and DESIGN §4.8 embed ```json blocks of NDJSON
// request lines under a documented contract: they are executable.
// These tests extract the blocks and run every line through an
// in-process server; scripts/docs_examples.sh is the over-the-socket
// leg of the same contract. A protocol change that orphans the docs
// fails here, in the tier-1 suite.

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

// The fenced ```lang blocks between the exact heading line `section`
// and the next heading starting with `end_prefix`.
std::vector<std::vector<std::string>> fenced_blocks(
    const std::vector<std::string>& lines, const std::string& section,
    const std::string& end_prefix, const std::string& lang) {
  std::vector<std::vector<std::string>> blocks;
  bool in_section = false;
  bool in_block = false;
  for (const std::string& line : lines) {
    if (!in_section) {
      in_section = line == section;
      continue;
    }
    if (!in_block && line.rfind(end_prefix, 0) == 0) break;
    if (!in_block) {
      if (line == "```" + lang) {
        in_block = true;
        blocks.emplace_back();
      }
      continue;
    }
    if (line == "```") {
      in_block = false;
      continue;
    }
    blocks.back().push_back(line);
  }
  return blocks;
}

// One documented block against a fresh server: every request line must
// come back as a response that is not an error (`# comment` lines are
// skipped, exactly as the --client pipe mode skips them).
void run_documented_block(const std::vector<std::string>& block) {
  serve::Server server(TransformService{CostOracle{}},
                       temp_path("docs-example.sock"));
  std::size_t requests = 0;
  for (const std::string& line : block) {
    if (line.empty() || line[0] == '#') continue;
    ++requests;
    const std::string raw = server.handle_line(line);
    const obs::json::Value rsp = obs::json::parse(raw);
    if (const obs::json::Value* outcome = rsp.find("outcome")) {
      EXPECT_NE(outcome->as_string(), "error")
          << "documented request errored: " << line
          << "\nresponse: " << raw;
    }
  }
  EXPECT_GE(requests, 1u) << "example block contains no request lines";
}

TEST(DocExamples, ReadmeServingRequestsExecuteVerbatim) {
  const auto lines =
      read_lines(std::string(FOURINDEX_SOURCE_DIR) + "/README.md");
  ASSERT_FALSE(lines.empty()) << "cannot read README.md";
  const auto blocks = fenced_blocks(lines, "## Serving", "## ", "json");
  ASSERT_FALSE(blocks.empty())
      << "README Serving carries no ```json example blocks";
  for (const auto& block : blocks) run_documented_block(block);
}

TEST(DocExamples, DesignSection48RequestsExecuteVerbatim) {
  const auto lines =
      read_lines(std::string(FOURINDEX_SOURCE_DIR) + "/DESIGN.md");
  ASSERT_FALSE(lines.empty()) << "cannot read DESIGN.md";
  const auto blocks = fenced_blocks(
      lines,
      "### 4.8 The persistent transform service and the measured-cost "
      "oracle",
      "## ", "json");
  ASSERT_FALSE(blocks.empty())
      << "DESIGN §4.8 carries no ```json example blocks";
  for (const auto& block : blocks) run_documented_block(block);
}

TEST(Server, MalformedLineKeepsTheLoopAlive) {
  const std::string sock = temp_path("serve-err.sock");
  serve::Server server(TransformService{CostOracle{}}, sock);
  const obs::json::Value err =
      obs::json::parse(server.handle_line("{not json"));
  EXPECT_EQ(err.find("outcome")->as_string(), "error");
  EXPECT_FALSE(err.find("error")->as_string().empty());
  // The service is still usable after the bad line.
  const obs::json::Value ok = obs::json::parse(server.handle_line(
      "{\"molecule\":\"custom\",\"n\":10,\"nodes\":1,\"plan_only\":true}"));
  EXPECT_EQ(ok.find("outcome")->as_string(), "admitted");
}

}  // namespace
