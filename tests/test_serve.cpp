// The persistent transform service: cost table/oracle behavior, the
// request-parse taxonomy, the four-way admission ladder, schedule-cache
// bit-identity, and the NDJSON wire layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/cost_oracle.hpp"
#include "serve/cost_table.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"

namespace {

using namespace fit;
using serve::Admission;
using serve::CostOracle;
using serve::CostTable;
using serve::Request;
using serve::Response;
using serve::TransformService;

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem + "." +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------- table

TEST(CostTable, InterpolatesInLogShapeAndClampsAtTheEnds) {
  CostTable t;
  t.add({"gemm", 1e6, 10e9, "test"});
  t.add({"gemm", 1e8, 20e9, "test"});

  // Exact samples come back exactly.
  EXPECT_DOUBLE_EQ(*t.estimate_rate("gemm", 1e6), 10e9);
  EXPECT_DOUBLE_EQ(*t.estimate_rate("gemm", 1e8), 20e9);
  // The geometric midpoint of the shapes is the arithmetic midpoint of
  // the rates (piecewise linear in log shape).
  EXPECT_NEAR(*t.estimate_rate("gemm", 1e7), 15e9, 1e-3);
  // Outside the sampled range but within the decade rule: clamped.
  EXPECT_DOUBLE_EQ(*t.estimate_rate("gemm", 3e5), 10e9);
  EXPECT_DOUBLE_EQ(*t.estimate_rate("gemm", 5e8), 20e9);
  // More than a decade away, or the wrong kind: no bucket, no guess.
  EXPECT_FALSE(t.estimate_rate("gemm", 1e4).has_value());
  EXPECT_FALSE(t.estimate_rate("link", 1e6).has_value());
  EXPECT_TRUE(t.has_bucket("gemm", 2e6));
  EXPECT_FALSE(t.has_bucket("gemm", 1e20));
}

TEST(CostTable, RemeasuringABucketOverwritesInsteadOfDuplicating) {
  CostTable t;
  t.add({"link", 512, 1e9, "old"});
  t.add({"link", 512, 3e9, "new"});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(*t.estimate_rate("link", 512), 3e9);
  EXPECT_EQ(t.samples()[0].origin, "new");
}

TEST(CostTable, RoundTripsThroughDiskAndRejectsMalformedDocuments) {
  CostTable t;
  t.add({"gemm", 2.5e7, 21.5e9, "bench_gemm"});
  t.add({"integrals", 46, 2e8, "bench"});
  const std::string path = temp_path("costs.json");
  ASSERT_TRUE(t.save(path));
  const CostTable back = CostTable::load(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(*back.estimate_rate("gemm", 2.5e7), 21.5e9);
  std::remove(path.c_str());

  EXPECT_THROW(CostTable::load("/nonexistent/costs.json"), ParseError);
  EXPECT_THROW(CostTable::from_json(obs::json::parse("{\"schema\":\"x\"}")),
               ParseError);
  EXPECT_THROW(
      CostTable::from_json(obs::json::parse(
          "{\"schema\":\"fourindex.costs/1\",\"samples\":"
          "[{\"kind\":\"gemm\",\"shape\":-1,\"rate\":1}]}")),
      ParseError);
}

// --------------------------------------------------------------- oracle

TEST(CostOracle, EmptyTableFallsBackToNominalRates) {
  const runtime::MachineConfig m = runtime::system_a(1);
  const CostOracle oracle;
  const core::PlanRates r = oracle.rates(m, 46, 4);
  EXPECT_EQ(r.source, "nominal");
  EXPECT_DOUBLE_EQ(r.flops_per_rank, m.flops_per_rank);
  EXPECT_DOUBLE_EQ(r.net_bandwidth_bps, m.net_bandwidth_bps);
  EXPECT_GT(oracle.fallbacks(), 0u);
}

TEST(CostOracle, BackedGemmBucketYieldsMeasuredRates) {
  const runtime::MachineConfig m = runtime::system_a(1);
  CostTable t;
  // Request shape for n=46, tile=4 is 2 * 46^3 * 4 ~ 7.8e5.
  t.add({"gemm", 8e5, 15e9, "test"});
  const CostOracle oracle(t);
  const core::PlanRates r = oracle.rates(m, 46, 4);
  EXPECT_EQ(r.source, "measured");
  EXPECT_NEAR(r.flops_per_rank, 15e9, 1e-3);
  // link/integrals buckets are absent: loud fallback to nominal.
  EXPECT_DOUBLE_EQ(r.net_bandwidth_bps, m.net_bandwidth_bps);
  EXPECT_GT(oracle.fallbacks(), 0u);
}

TEST(CostOracle, BrokenCostTableEnvIsARefusalNotADegrade) {
  const std::string path = temp_path("broken.json");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{not json", f);
  std::fclose(f);
  ::setenv("FOURINDEX_COST_TABLE", path.c_str(), 1);
  EXPECT_THROW(CostOracle::from_env(), ParseError);
  ::unsetenv("FOURINDEX_COST_TABLE");
  std::remove(path.c_str());
}

// ------------------------------------------------------- parse taxonomy

std::string parse_error_of(const std::string& json) {
  try {
    serve::parse_request(obs::json::parse(json));
  } catch (const ParseError& e) {
    return e.what();
  }
  return "";
}

TEST(ParseRequest, TaxonomyIsStable) {
  EXPECT_EQ(parse_error_of("[1,2]"), "request is not a JSON object");
  EXPECT_EQ(parse_error_of("{}"), "missing string field 'molecule'");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Benzene\"}"),
            "unknown molecule 'Benzene'");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Uracil\",\"system\":\"Q\"}"),
            "unknown system 'Q' (want A|B|C)");
  EXPECT_EQ(
      parse_error_of("{\"molecule\":\"Uracil\",\"balance\":\"chaotic\"}"),
      "unknown balance mode 'chaotic'");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Uracil\",\"nodes\":0}"),
            "field 'nodes' must be a positive number");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"Uracil\",\"tile\":2.5}"),
            "field 'tile' must be a positive number");
  EXPECT_EQ(parse_error_of("{\"molecule\":\"custom\"}"),
            "custom molecule needs field 'n' >= 2");

  const Request r = serve::parse_request(obs::json::parse(
      "{\"molecule\":\"custom\",\"n\":24,\"irrep_order\":2,"
      "\"nodes\":2,\"balance\":\"steal\",\"real\":true}"));
  EXPECT_EQ(r.custom_n, 24u);
  EXPECT_EQ(r.custom_s, 2u);
  EXPECT_EQ(r.n_nodes, 2u);
  EXPECT_EQ(r.balance, "steal");
  EXPECT_TRUE(r.real);
}

TEST(ParseRequest, MalformedLinesBecomeErrorResponsesNotExceptions) {
  TransformService svc{CostOracle{}};
  const Response bad_json = svc.submit_line("{oops");
  EXPECT_EQ(bad_json.admission, Admission::Error);
  EXPECT_FALSE(bad_json.error.empty());
  const Response bad_req = svc.submit_line("{\"molecule\":\"Benzene\"}");
  EXPECT_EQ(bad_req.admission, Admission::Error);
  EXPECT_EQ(bad_req.error, "unknown molecule 'Benzene'");
  EXPECT_EQ(svc.metrics().sum("serve.errors"), 2.0);
}

// ------------------------------------------------------ admission ladder

TEST(Admission, WalksAdmittedThroughDegradedToQueuedAndRejected) {
  TransformService::Options opt;
  opt.queue_depth = 1;
  TransformService svc{CostOracle{}, opt};

  // Hyperpolar on 4 SystemA nodes: the idle machine picks op1234.
  // plan_only reservations eat aggregate memory, so repeated identical
  // requests must walk the ladder monotonically downward: Admitted
  // (full fusion fits), Degraded (only a lower level fits), Queued
  // (nothing fits, queue has room), Rejected (queue full).
  Request r;
  r.molecule = "Hyperpolar";
  r.n_nodes = 4;
  r.plan_only = true;

  std::vector<Admission> transitions;
  Admission last = Admission::Error;
  std::uint64_t first_ticket = 0;
  for (int i = 0; i < 4096; ++i) {
    const Response rsp = svc.submit(r);
    if (rsp.admission != last) {
      transitions.push_back(rsp.admission);
      last = rsp.admission;
    }
    if (first_ticket == 0 && rsp.admission == Admission::Admitted)
      first_ticket = rsp.ticket;
    if (rsp.admission == Admission::Rejected) break;
  }
  const std::vector<Admission> want = {
      Admission::Admitted, Admission::Degraded, Admission::Queued,
      Admission::Rejected};
  EXPECT_EQ(transitions, want);
  EXPECT_GT(svc.reserved_bytes(), 0.0);
  EXPECT_EQ(svc.queued(), 1u);

  // Releasing the first (largest) reservation must retry the queue;
  // the parked request fits again and comes back non-queued.
  const double reserved_before = svc.reserved_bytes();
  const std::vector<Response> ran = svc.release(first_ticket);
  ASSERT_EQ(ran.size(), 1u);
  EXPECT_TRUE(ran[0].admission == Admission::Admitted ||
              ran[0].admission == Admission::Degraded);
  EXPECT_EQ(svc.queued(), 0u);
  EXPECT_LT(svc.reserved_bytes(), reserved_before + 1.0);
  EXPECT_GE(svc.metrics().sum("serve.released"), 1.0);

  // An unknown ticket is an error response, not a crash.
  const std::vector<Response> nope = svc.release(999999);
  ASSERT_EQ(nope.size(), 1u);
  EXPECT_EQ(nope[0].admission, Admission::Error);
}

TEST(Admission, ProblemBeyondTheIdleMachineIsRejectedOutright) {
  TransformService svc{CostOracle{}};
  Request r;
  r.molecule = "custom";
  r.custom_n = 1024;  // even unfused needs > SystemA x1's aggregate
  r.custom_s = 1;
  r.n_nodes = 1;
  r.plan_only = true;
  const Response rsp = svc.submit(r);
  EXPECT_EQ(rsp.admission, Admission::Rejected);
  EXPECT_NE(rsp.error.find("exceeds the idle machine"), std::string::npos);
  EXPECT_EQ(svc.queued(), 0u);
  EXPECT_EQ(svc.reserved_bytes(), 0.0);
}

// -------------------------------------------------------- schedule cache

TEST(ScheduleCache, RepeatedRequestHitsAndReplaysBitIdentically) {
  TransformService svc{CostOracle{}};
  Request r;
  r.molecule = "custom";
  r.custom_n = 12;
  r.custom_s = 2;
  r.n_nodes = 1;
  r.balance = "auto";
  r.tile = 4;
  r.tile_l = 4;
  r.real = true;

  const Response cold = svc.submit(r);
  ASSERT_EQ(cold.admission, Admission::Admitted);
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_NE(cold.result_checksum, 0.0);

  const Response warm = svc.submit(r);
  ASSERT_EQ(warm.admission, Admission::Admitted);
  EXPECT_TRUE(warm.cache_hit);
  // Bit-identical transform result: every balance mode writes each
  // output tile from exactly one task, so replaying the memoized
  // per-phase picks must reproduce the cold run's bytes exactly.
  EXPECT_EQ(warm.result_checksum, cold.result_checksum);
  EXPECT_EQ(warm.fusion, cold.fusion);

  EXPECT_GE(svc.metrics().sum("serve.cache_hits"), 1.0);
  EXPECT_EQ(svc.metrics().sum("serve.cache_misses"), 1.0);
  // The warm run replayed the Auto picks out of the memo: at least one
  // per-phase DES re-plan was skipped.
  EXPECT_GE(svc.metrics().sum("serve.des_skips"), 1.0);

  // A different balance mode is a different fingerprint — no false
  // sharing between schedules.
  Request other = r;
  other.balance = "static";
  const Response miss = svc.submit(other);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(miss.result_checksum, cold.result_checksum);
}

// ------------------------------------------------------------ wire layer

TEST(Server, SpeaksNdjsonOverAUnixSocket) {
  const std::string sock = temp_path("serve.sock");
  serve::Server server(TransformService{CostOracle{}}, sock);

  std::thread loop([&] { server.serve_forever(/*max_requests=*/4); });
  const std::string req =
      "{\"molecule\":\"custom\",\"n\":12,\"irrep_order\":2,\"nodes\":1,"
      "\"real\":true}";
  const obs::json::Value cold =
      obs::json::parse(serve::Server::request(sock, req));
  const obs::json::Value warm =
      obs::json::parse(serve::Server::request(sock, req));
  EXPECT_EQ(cold.find("outcome")->as_string(), "admitted");
  EXPECT_TRUE(warm.find("cache_hit")->as_bool());
  EXPECT_EQ(warm.find("result_checksum")->as_number(),
            cold.find("result_checksum")->as_number());

  const obs::json::Value stats =
      obs::json::parse(serve::Server::request(sock, "{\"verb\":\"stats\"}"));
  EXPECT_DOUBLE_EQ(
      stats.find("serve.cache_hits")->find("sum")->as_number(), 1.0);

  const obs::json::Value bye = obs::json::parse(
      serve::Server::request(sock, "{\"verb\":\"shutdown\"}"));
  EXPECT_EQ(bye.find("outcome")->as_string(), "shutdown");
  loop.join();
}

TEST(Server, MalformedLineKeepsTheLoopAlive) {
  const std::string sock = temp_path("serve-err.sock");
  serve::Server server(TransformService{CostOracle{}}, sock);
  const obs::json::Value err =
      obs::json::parse(server.handle_line("{not json"));
  EXPECT_EQ(err.find("outcome")->as_string(), "error");
  EXPECT_FALSE(err.find("error")->as_string().empty());
  // The service is still usable after the bad line.
  const obs::json::Value ok = obs::json::parse(server.handle_line(
      "{\"molecule\":\"custom\",\"n\":10,\"nodes\":1,\"plan_only\":true}"));
  EXPECT_EQ(ok.find("outcome")->as_string(), "admitted");
}

}  // namespace
