#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/sym_tile.hpp"
#include "ga/global_array.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"
#include "tensor/tiling.hpp"

namespace {

using namespace fit;
using core::finish_sym_tile;
using core::get_sym_tile;
using core::nbget_sym_tile;
using core::transpose4;
using runtime::Cluster;
using runtime::ExecutionMode;
using runtime::MachineConfig;

MachineConfig tiny_machine() {
  MachineConfig m;
  m.name = "tiny";
  m.n_nodes = 2;
  m.ranks_per_node = 2;
  m.mem_per_node_bytes = 64e6;
  m.flops_per_rank = 1e9;
  m.integrals_per_sec = 1e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 1e-6;
  m.local_bandwidth_bps = 1e10;
  return m;
}

TEST(Transpose4, SwapsExactlyTheRequestedPair) {
  const std::size_t len[4] = {2, 3, 4, 5};
  std::vector<double> in(2 * 3 * 4 * 5);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<double>(i);
  const std::size_t pairs[][2] = {{0, 1}, {2, 3}, {0, 3}, {1, 2}};
  for (const auto& pr : pairs) {
    const int d0 = static_cast<int>(pr[0]), d1 = static_cast<int>(pr[1]);
    std::size_t olen[4] = {len[0], len[1], len[2], len[3]};
    std::swap(olen[d0], olen[d1]);
    std::vector<double> out(in.size());
    transpose4(in.data(), out.data(), len, d0, d1);
    std::size_t c[4];
    for (c[0] = 0; c[0] < len[0]; ++c[0])
      for (c[1] = 0; c[1] < len[1]; ++c[1])
        for (c[2] = 0; c[2] < len[2]; ++c[2])
          for (c[3] = 0; c[3] < len[3]; ++c[3]) {
            std::size_t oc[4] = {c[0], c[1], c[2], c[3]};
            std::swap(oc[d0], oc[d1]);
            EXPECT_EQ(
                out[((oc[0] * olen[1] + oc[1]) * olen[2] + oc[2]) * olen[3] +
                    oc[3]],
                in[((c[0] * len[1] + c[1]) * len[2] + c[2]) * len[3] +
                   c[3]]);
          }
  }
}

TEST(Transpose4, IsAnInvolution) {
  const std::size_t len[4] = {3, 2, 5, 4};
  std::vector<double> in(3 * 2 * 5 * 4);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = 0.5 * static_cast<double>(i) - 7.0;
  for (int d0 = 0; d0 < 4; ++d0)
    for (int d1 = d0 + 1; d1 < 4; ++d1) {
      std::size_t olen[4] = {len[0], len[1], len[2], len[3]};
      std::swap(olen[d0], olen[d1]);
      std::vector<double> once(in.size()), twice(in.size());
      transpose4(in.data(), once.data(), len, d0, d1);
      transpose4(once.data(), twice.data(), olen, d0, d1);
      EXPECT_EQ(in, twice) << "pair (" << d0 << "," << d1 << ")";
    }
}

// Property: for a triangular-stored array filled with a function
// symmetric under the (d0,d1) index swap, get_sym_tile of *every*
// logical tile — above, on, and below the diagonal, including the
// ragged boundary tiles — reproduces the function directly, and the
// nonblocking issue/finish pair produces the identical buffer.
void check_sym_property(int d0, int d1) {
  Cluster cl(tiny_machine(), ExecutionMode::Real);
  // Ragged everywhere: 7 % 3 != 0 and 5 % 2 != 0, so the last tile of
  // every dimension is short and mirrored fetches transpose tiles
  // whose two extents differ.
  tensor::Tiling sym_t(7, 3), other_t(5, 2);
  std::vector<tensor::Tiling> dims(4, other_t);
  dims[d0] = sym_t;
  dims[d1] = sym_t;
  auto f = [&](std::size_t c[4]) {
    // Symmetric under swapping the (d0,d1) indices.
    const double s = static_cast<double>(c[d0] + c[d1]);
    const double p = static_cast<double>(c[d0] * c[d1]);
    double rest = 0;
    for (int d = 0; d < 4; ++d)
      if (d != d0 && d != d1) rest = rest * 10 + static_cast<double>(c[d]);
    return s + 0.5 * p + 0.001 * rest;
  };
  ga::GlobalArray arr(cl, "sym", dims,
                      ga::filter_triangular(static_cast<std::size_t>(d0),
                                            static_cast<std::size_t>(d1)));
  cl.run_phase("fill", [&](runtime::RankCtx& ctx) {
    for (std::size_t idx : arr.tiles_of(ctx.rank())) {
      const auto& ti = arr.tile_by_index(idx);
      std::vector<double> buf(ti.elements);
      std::size_t c[4];
      std::size_t q = 0;
      for (c[0] = ti.lo[0]; c[0] < ti.lo[0] + ti.len[0]; ++c[0])
        for (c[1] = ti.lo[1]; c[1] < ti.lo[1] + ti.len[1]; ++c[1])
          for (c[2] = ti.lo[2]; c[2] < ti.lo[2] + ti.len[2]; ++c[2])
            for (c[3] = ti.lo[3]; c[3] < ti.lo[3] + ti.len[3]; ++c[3])
              buf[q++] = f(c);
      arr.put(ctx, ti.coord, buf.data());
    }
  });
  cl.run_phase("check", [&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    const std::size_t cap = 3 * 3 * 2 * 2 * 4;  // >= any tile
    std::vector<double> buf(cap), scratch(cap), nbbuf(cap),
        nbscratch(cap);
    ga::TileCoord coord(4);
    for (coord[0] = 0; coord[0] < dims[0].ntiles(); ++coord[0])
      for (coord[1] = 0; coord[1] < dims[1].ntiles(); ++coord[1])
        for (coord[2] = 0; coord[2] < dims[2].ntiles(); ++coord[2])
          for (coord[3] = 0; coord[3] < dims[3].ntiles(); ++coord[3]) {
            get_sym_tile(arr, ctx, coord, d0, d1, buf.data(),
                         scratch.data());
            auto fetch = nbget_sym_tile(arr, ctx, coord, d0, d1,
                                        nbbuf.data(), nbscratch.data());
            finish_sym_tile(ctx, fetch);
            // Logical extents of the requested orientation.
            std::size_t lo[4], len[4];
            for (int d = 0; d < 4; ++d) {
              lo[d] = dims[d].lo(coord[d]);
              len[d] = dims[d].len(coord[d]);
            }
            std::size_t c[4];
            std::size_t q = 0;
            for (c[0] = lo[0]; c[0] < lo[0] + len[0]; ++c[0])
              for (c[1] = lo[1]; c[1] < lo[1] + len[1]; ++c[1])
                for (c[2] = lo[2]; c[2] < lo[2] + len[2]; ++c[2])
                  for (c[3] = lo[3]; c[3] < lo[3] + len[3]; ++c[3], ++q) {
                    ASSERT_EQ(buf[q], f(c))
                        << "tile (" << coord[0] << "," << coord[1] << ","
                        << coord[2] << "," << coord[3] << ") pair (" << d0
                        << "," << d1 << ")";
                    ASSERT_EQ(nbbuf[q], buf[q]);
                  }
          }
  });
}

TEST(SymTile, BlockingAndNonblockingMatchDirectFetch01) {
  check_sym_property(0, 1);
}

TEST(SymTile, BlockingAndNonblockingMatchDirectFetch23) {
  check_sym_property(2, 3);
}

}  // namespace
