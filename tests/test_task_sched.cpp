// NXTVAL-style dynamic load balancing (Sec. 7.3): the task-counter /
// work-stealing claim planner and its integration into the parallel
// schedules.
//
// The deterministic headline claims:
//   - Balance::Static is bit-identical to the historical owner-
//     filtered loops and reports zero scheduler activity;
//   - Counter and Steal produce bit-identical Real-mode results (each
//     output tile is written by exactly one task per phase) while the
//     modeled time and sched.* metrics move;
//   - on a skewed workload the dynamic strategies beat Static on both
//     worst-rank imbalance and simulated wall-clock;
//   - a rank killed mid-drain under Balance::Steal has its orphaned
//     claims adopted by the surviving owner and the result stays
//     bit-identical to the fault-free run;
//   - a dead counter home rank is re-owned by its survivor
//     (sched.counter_reowns).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_baseline.hpp"
#include "core/schedules_par.hpp"
#include "core/schedules_seq.hpp"
#include "ga/task_counter.hpp"
#include "runtime/cluster.hpp"
#include "runtime/faults.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace fit;
using runtime::Cluster;
using runtime::ExecutionMode;
using runtime::FaultEvent;
using runtime::FaultInjector;
using runtime::FaultKind;
using runtime::MachineConfig;

MachineConfig sched_machine(std::size_t nodes, std::size_t rpn,
                            double mem_per_node = 64e6) {
  MachineConfig m;
  m.name = "sched-test";
  m.n_nodes = nodes;
  m.ranks_per_node = rpn;
  m.mem_per_node_bytes = mem_per_node;
  m.flops_per_rank = 1e9;
  m.integrals_per_sec = 1e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 1e-6;
  m.local_bandwidth_bps = 1e10;
  m.disk_bandwidth_bps = 1e9;  // recovery needs a PFS for checkpoints
  m.disk_latency_s = 1e-3;
  return m;
}

core::Problem sched_problem(std::size_t n = 12, unsigned s = 2) {
  return core::make_problem(chem::custom_molecule("sched", n, s, 17 * n + s));
}

core::ParOptions sched_options(ga::Balance b) {
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  o.balance = b;
  return o;
}

FaultEvent kill_event(std::size_t phase, std::size_t rank) {
  FaultEvent ev;
  ev.kind = FaultKind::KillRank;
  ev.phase = phase;
  ev.rank = rank;
  return ev;
}

// ---- plan_tasks (the claim DES) -------------------------------------

TEST(PlanTasks, StaticPlanMirrorsTheOwnerMap) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "static-plan");
  std::vector<std::size_t> owner = {0, 1, 2, 3, 0, 1, 2, 3, 1};
  std::vector<double> cost(owner.size(), 1.0);
  const auto plan =
      ga::plan_tasks(cl, ga::Balance::Static, counter, cost, owner);
  ASSERT_EQ(plan.claims.size(), 4u);
  EXPECT_EQ(plan.n_steals, 0u);
  EXPECT_EQ(plan.total_wait_s, 0.0);
  for (std::size_t r = 0; r < 4; ++r) {
    std::size_t prev = 0;
    for (const auto& c : plan.claims[r]) {
      EXPECT_EQ(owner[c.task], r);
      EXPECT_GE(c.task, prev);  // canonical ascending order
      EXPECT_EQ(c.wait_s, 0.0);
      EXPECT_FALSE(c.stolen);
      prev = c.task;
    }
  }
}

TEST(PlanTasks, CounterPlanIsExhaustiveDeterministicAndContended) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "counter-plan");
  std::vector<std::size_t> owner(17, 0);
  for (std::size_t t = 0; t < owner.size(); ++t) owner[t] = t % 4;
  std::vector<double> cost(owner.size(), 1e-6);
  const auto a = ga::plan_tasks(cl, ga::Balance::Counter, counter, cost,
                                owner);
  const auto b = ga::plan_tasks(cl, ga::Balance::Counter, counter, cost,
                                owner);
  std::multiset<std::size_t> claimed;
  for (std::size_t r = 0; r < a.claims.size(); ++r) {
    ASSERT_EQ(a.claims[r].size(), b.claims[r].size());
    ASSERT_FALSE(a.claims[r].empty());
    // Every rank's final fetch comes back empty — that is how it
    // learns the counter ran past the task count.
    EXPECT_EQ(a.claims[r].back().task, ga::TaskClaim::kNone);
    for (std::size_t i = 0; i < a.claims[r].size(); ++i) {
      EXPECT_EQ(a.claims[r][i].task, b.claims[r][i].task);  // determinism
      EXPECT_EQ(a.claims[r][i].wait_s, b.claims[r][i].wait_s);
      if (a.claims[r][i].task != ga::TaskClaim::kNone)
        claimed.insert(a.claims[r][i].task);
    }
  }
  EXPECT_EQ(claimed.size(), owner.size());  // each task exactly once
  EXPECT_EQ(*claimed.begin(), 0u);
  // With near-zero task cost all four ranks hammer the counter at
  // once: somebody must queue behind somebody.
  EXPECT_GT(a.total_wait_s, 0.0);
}

TEST(PlanTasks, StealPlanRebalancesASkewedOwnerMap) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "steal-plan");
  // Rank 0 owns every task: the other three can only make progress by
  // stealing.
  std::vector<std::size_t> owner(16, 0);
  std::vector<double> cost(owner.size(), 1.0);
  const auto plan =
      ga::plan_tasks(cl, ga::Balance::Steal, counter, cost, owner);
  EXPECT_GT(plan.n_steals, 0u);
  std::multiset<std::size_t> claimed;
  for (std::size_t r = 0; r < plan.claims.size(); ++r)
    for (const auto& c : plan.claims[r]) {
      EXPECT_NE(c.task, ga::TaskClaim::kNone);  // no terminal fetches
      EXPECT_TRUE(c.task < owner.size());
      if (c.stolen) {
        EXPECT_EQ(c.peer, 0u);
      }
      claimed.insert(c.task);
    }
  EXPECT_EQ(claimed.size(), owner.size());
  EXPECT_EQ(claimed.count(0), 1u);
  // The steal RTTs are worth paying: everyone ends with work.
  for (std::size_t r = 1; r < plan.claims.size(); ++r)
    EXPECT_FALSE(plan.claims[r].empty());
}

// ---- schedule integration -------------------------------------------

TEST(TaskSched, StaticIsInertAndDeterministic) {
  auto p = sched_problem();
  auto ref = core::reference_transform(p);
  Cluster cl1(sched_machine(2, 2), ExecutionMode::Real);
  auto r1 = core::fused_inner_par_transform(p, cl1,
                                            sched_options(ga::Balance::Static));
  Cluster cl2(sched_machine(2, 2), ExecutionMode::Real);
  auto r2 = core::fused_inner_par_transform(p, cl2,
                                            sched_options(ga::Balance::Static));
  ASSERT_TRUE(r1.c.has_value());
  ASSERT_TRUE(r2.c.has_value());
  EXPECT_LT(r1.c->max_abs_diff(ref), 1e-9);
  EXPECT_EQ(r1.c->max_abs_diff(*r2.c), 0.0);       // run-to-run identical
  EXPECT_EQ(r1.stats.sim_time, r2.stats.sim_time);  // and in modeled time
  // Static pays no scheduling traffic and reports no dynamic activity.
  EXPECT_EQ(r1.stats.sched_claims, 0.0);
  EXPECT_EQ(r1.stats.sched_steals, 0.0);
  EXPECT_EQ(r1.stats.sched_counter_wait_s, 0.0);
  EXPECT_EQ(cl1.metrics().sum("sched.claims"), 0.0);
  EXPECT_EQ(cl1.metrics().sum("sched.steals"), 0.0);
  EXPECT_EQ(cl1.metrics().sum("sched.counter_waits"), 0.0);
}

TEST(TaskSched, DynamicModesAreBitIdenticalToStatic) {
  auto p = sched_problem();
  Cluster cls(sched_machine(2, 2), ExecutionMode::Real);
  auto rs = core::fused_inner_par_transform(
      p, cls, sched_options(ga::Balance::Static));
  ASSERT_TRUE(rs.c.has_value());

  for (ga::Balance b : {ga::Balance::Counter, ga::Balance::Steal}) {
    SCOPED_TRACE(ga::to_string(b));
    Cluster cl(sched_machine(2, 2), ExecutionMode::Real);
    auto r = core::fused_inner_par_transform(p, cl, sched_options(b));
    ASSERT_TRUE(r.c.has_value());
    // Same tasks, same bodies, one writer per output tile per phase:
    // the result does not merely agree, it is bit-identical.
    EXPECT_EQ(r.c->max_abs_diff(*rs.c), 0.0);
    EXPECT_GT(r.stats.sched_claims, 0.0);
    if (b == ga::Balance::Counter) {
      EXPECT_GT(cl.metrics().sum("sched.counter_waits"), 0.0);
      EXPECT_GE(r.stats.sched_counter_wait_s, 0.0);
      // Scheduling is not free: the counter round trips show up in
      // the modeled time.
      EXPECT_GT(r.stats.sim_time, 0.0);
    }
  }
}

TEST(TaskSched, DynamicBalancingBeatsStaticOnSkewedWork) {
  // Contiguous alpha chunks carry the triangular alpha >= beta weight
  // (several-fold between the lightest and heaviest chunk), and with
  // n_ac == nranks the static map (tk*n_ac + ac) % nranks pins each
  // chunk index to a fixed rank — the systematic skew Sec. 7.3's
  // NXTVAL counter absorbs.
  auto p = sched_problem(32, 2);
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 16;
  o.alpha_parallel = 6;
  o.alpha_chunking = core::ParOptions::AlphaChunking::Contiguous;
  o.gather_result = false;

  auto run = [&](ga::Balance b) {
    o.balance = b;
    Cluster cl(sched_machine(2, 3), ExecutionMode::Simulate);
    return core::fused_inner_par_transform(p, cl, o);
  };
  auto rs = run(ga::Balance::Static);
  auto rc = run(ga::Balance::Counter);
  auto rt = run(ga::Balance::Steal);
  EXPECT_GT(rs.stats.worst_imbalance, 1.2);  // the skew is real
  EXPECT_LT(rc.stats.worst_imbalance, rs.stats.worst_imbalance);
  EXPECT_LT(rt.stats.worst_imbalance, rs.stats.worst_imbalance);
  EXPECT_LT(rc.stats.sim_time, rs.stats.sim_time);
  EXPECT_LT(rt.stats.sim_time, rs.stats.sim_time);
  EXPECT_GT(rt.stats.sched_steals, 0.0);
  EXPECT_GT(rc.stats.sched_counter_wait_s, 0.0);
}

TEST(TaskSched, RecomputeScheduleStaysBitIdenticalUnderDynamicModes) {
  // The recompute baseline is the schedule whose phase ends in GA
  // accumulates — the op most sensitive to who executes a task. One
  // writer per (ta, tb, tc, td) tile per phase keeps every mode
  // bit-identical anyway.
  auto p = sched_problem();
  core::ParOptions o;
  o.tile = 4;
  auto run = [&](ga::Balance b) {
    o.balance = b;
    Cluster cl(sched_machine(2, 2), ExecutionMode::Real);
    return core::nwchem_recompute_par_transform(p, cl, o);
  };
  auto rs = run(ga::Balance::Static);
  ASSERT_TRUE(rs.c.has_value());
  for (ga::Balance b : {ga::Balance::Counter, ga::Balance::Steal}) {
    SCOPED_TRACE(ga::to_string(b));
    auto r = run(b);
    ASSERT_TRUE(r.c.has_value());
    EXPECT_EQ(r.c->max_abs_diff(*rs.c), 0.0);
    EXPECT_GT(r.stats.sched_claims, 0.0);
  }
}

// ---- faults ---------------------------------------------------------

TEST(TaskSchedFaults, MidDrainKillUnderStealIsAdoptedBitIdentically) {
  auto p = sched_problem();
  auto ref = core::reference_transform(p);
  const auto opt = sched_options(ga::Balance::Steal);

  Cluster clean(sched_machine(2, 2), ExecutionMode::Real);
  const auto want = core::fused_inner_par_transform(p, clean, opt);
  ASSERT_TRUE(want.c.has_value());

  // Phase 1 is "fused12 [l-slice 0]": the claim plan is drawn with
  // rank 1 alive, then the boundary kill fires before the phase body
  // runs — its queue is orphaned mid-drain.
  Cluster faulty(sched_machine(2, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  FaultInjector inj;
  inj.schedule(kill_event(/*phase=*/1, /*rank=*/1));
  faulty.install_faults(inj);
  const auto got = core::fused_inner_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_LT(got.c->max_abs_diff(ref), 1e-9);
  EXPECT_EQ(got.c->max_abs_diff(*want.c), 0.0);  // bit-identical recovery
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.kills"), 1.0);
  EXPECT_GT(reg.sum("sched.orphans_adopted"), 0.0);
  EXPECT_TRUE(faulty.is_dead(1));
  // Adopted work is charged, not teleported: the survivor's run costs
  // more modeled time than the fault-free one.
  EXPECT_GT(faulty.sim_time(), clean.sim_time());
}

TEST(TaskSchedFaults, DeadCounterHomeIsReowned) {
  auto p = sched_problem();
  auto ref = core::reference_transform(p);
  const auto opt = sched_options(ga::Balance::Counter);

  Cluster faulty(sched_machine(2, 2), ExecutionMode::Real);
  // The counter for the first fused12 phase lives on a deterministic
  // (FNV-1a) home rank; kill exactly that rank at that phase.
  const std::size_t home =
      ga::TaskCounter(faulty, "fused12 [l-slice 0]").home();
  faulty.enable_recovery();
  FaultInjector inj;
  inj.schedule(kill_event(/*phase=*/1, home));
  faulty.install_faults(inj);
  const auto got = core::fused_inner_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_LT(got.c->max_abs_diff(ref), 1e-9);
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.kills"), 1.0);
  EXPECT_GE(reg.sum("sched.counter_reowns"), 1.0);
  // Later phases plan against the re-homed counter without incident.
  EXPECT_GT(reg.sum("sched.claims"), 0.0);
}

}  // namespace
