// NXTVAL-style dynamic load balancing (Sec. 7.3): the task-counter /
// work-stealing claim planner and its integration into the parallel
// schedules.
//
// The deterministic headline claims:
//   - Balance::Static is bit-identical to the historical owner-
//     filtered loops and reports zero scheduler activity;
//   - Counter and Steal produce bit-identical Real-mode results (each
//     output tile is written by exactly one task per phase) while the
//     modeled time and sched.* metrics move;
//   - on a skewed workload the dynamic strategies beat Static on both
//     worst-rank imbalance and simulated wall-clock;
//   - a rank killed mid-drain under Balance::Steal has its orphaned
//     claims adopted by the surviving owner and the result stays
//     bit-identical to the fault-free run;
//   - a dead counter home rank is re-owned by its survivor
//     (sched.counter_reowns).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "chem/molecule.hpp"
#include "core/planner.hpp"
#include "core/problem.hpp"
#include "core/schedules_baseline.hpp"
#include "core/schedules_par.hpp"
#include "core/schedules_seq.hpp"
#include "ga/task_counter.hpp"
#include "runtime/cluster.hpp"
#include "runtime/faults.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace fit;
using runtime::Cluster;
using runtime::ExecutionMode;
using runtime::FaultEvent;
using runtime::FaultInjector;
using runtime::FaultKind;
using runtime::MachineConfig;

MachineConfig sched_machine(std::size_t nodes, std::size_t rpn,
                            double mem_per_node = 64e6) {
  MachineConfig m;
  m.name = "sched-test";
  m.n_nodes = nodes;
  m.ranks_per_node = rpn;
  m.mem_per_node_bytes = mem_per_node;
  m.flops_per_rank = 1e9;
  m.integrals_per_sec = 1e8;
  m.net_bandwidth_bps = 1e9;
  m.net_latency_s = 1e-6;
  m.local_bandwidth_bps = 1e10;
  m.disk_bandwidth_bps = 1e9;  // recovery needs a PFS for checkpoints
  m.disk_latency_s = 1e-3;
  return m;
}

core::Problem sched_problem(std::size_t n = 12, unsigned s = 2) {
  return core::make_problem(chem::custom_molecule("sched", n, s, 17 * n + s));
}

core::ParOptions sched_options(ga::Balance b) {
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  o.balance = b;
  return o;
}

FaultEvent kill_event(std::size_t phase, std::size_t rank) {
  FaultEvent ev;
  ev.kind = FaultKind::KillRank;
  ev.phase = phase;
  ev.rank = rank;
  return ev;
}

// ---- plan_tasks (the claim DES) -------------------------------------

TEST(PlanTasks, StaticPlanMirrorsTheOwnerMap) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "static-plan");
  std::vector<std::size_t> owner = {0, 1, 2, 3, 0, 1, 2, 3, 1};
  std::vector<double> cost(owner.size(), 1.0);
  const auto plan =
      ga::plan_tasks(cl, ga::Balance::Static, counter, cost, owner);
  ASSERT_EQ(plan.claims.size(), 4u);
  EXPECT_EQ(plan.n_steals, 0u);
  EXPECT_EQ(plan.total_wait_s, 0.0);
  for (std::size_t r = 0; r < 4; ++r) {
    std::size_t prev = 0;
    for (const auto& c : plan.claims[r]) {
      EXPECT_EQ(owner[c.task], r);
      EXPECT_GE(c.task, prev);  // canonical ascending order
      EXPECT_EQ(c.wait_s, 0.0);
      EXPECT_FALSE(c.stolen);
      prev = c.task;
    }
  }
}

TEST(PlanTasks, CounterPlanIsExhaustiveDeterministicAndContended) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "counter-plan");
  std::vector<std::size_t> owner(17, 0);
  for (std::size_t t = 0; t < owner.size(); ++t) owner[t] = t % 4;
  std::vector<double> cost(owner.size(), 1e-6);
  const auto a = ga::plan_tasks(cl, ga::Balance::Counter, counter, cost,
                                owner);
  const auto b = ga::plan_tasks(cl, ga::Balance::Counter, counter, cost,
                                owner);
  std::multiset<std::size_t> claimed;
  for (std::size_t r = 0; r < a.claims.size(); ++r) {
    ASSERT_EQ(a.claims[r].size(), b.claims[r].size());
    ASSERT_FALSE(a.claims[r].empty());
    // Every rank's final fetch comes back empty — that is how it
    // learns the counter ran past the task count.
    EXPECT_EQ(a.claims[r].back().task, ga::TaskClaim::kNone);
    for (std::size_t i = 0; i < a.claims[r].size(); ++i) {
      EXPECT_EQ(a.claims[r][i].task, b.claims[r][i].task);  // determinism
      EXPECT_EQ(a.claims[r][i].wait_s, b.claims[r][i].wait_s);
      if (a.claims[r][i].task != ga::TaskClaim::kNone)
        claimed.insert(a.claims[r][i].task);
    }
  }
  EXPECT_EQ(claimed.size(), owner.size());  // each task exactly once
  EXPECT_EQ(*claimed.begin(), 0u);
  // With near-zero task cost all four ranks hammer the counter at
  // once: somebody must queue behind somebody.
  EXPECT_GT(a.total_wait_s, 0.0);
}

TEST(PlanTasks, StealPlanRebalancesASkewedOwnerMap) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "steal-plan");
  // Rank 0 owns every task: the other three can only make progress by
  // stealing.
  std::vector<std::size_t> owner(16, 0);
  std::vector<double> cost(owner.size(), 1.0);
  const auto plan =
      ga::plan_tasks(cl, ga::Balance::Steal, counter, cost, owner);
  EXPECT_GT(plan.n_steals, 0u);
  std::multiset<std::size_t> claimed;
  for (std::size_t r = 0; r < plan.claims.size(); ++r)
    for (const auto& c : plan.claims[r]) {
      EXPECT_NE(c.task, ga::TaskClaim::kNone);  // no terminal fetches
      EXPECT_TRUE(c.task < owner.size());
      if (c.stolen) {
        EXPECT_EQ(c.peer, 0u);
      }
      claimed.insert(c.task);
    }
  EXPECT_EQ(claimed.size(), owner.size());
  EXPECT_EQ(claimed.count(0), 1u);
  // The steal RTTs are worth paying: everyone ends with work.
  for (std::size_t r = 1; r < plan.claims.size(); ++r)
    EXPECT_FALSE(plan.claims[r].empty());
}

// Every real task claimed exactly once, no matter the mechanism.
std::multiset<std::size_t> claimed_tasks(const ga::TaskPlan& plan) {
  std::multiset<std::size_t> claimed;
  for (const auto& list : plan.claims)
    for (const auto& c : list)
      if (c.task != ga::TaskClaim::kNone) claimed.insert(c.task);
  return claimed;
}

TEST(PlanTasks, MitigatedPlansPartitionTheTaskSetDeterministically) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "mitigated-plan");
  std::vector<std::size_t> owner(37, 0);
  for (std::size_t t = 0; t < owner.size(); ++t) owner[t] = t % 4;
  std::vector<double> cost(owner.size(), 1e-6);
  for (ga::Balance b :
       {ga::Balance::Batched, ga::Balance::PerNode, ga::Balance::Tree}) {
    SCOPED_TRACE(ga::to_string(b));
    const auto a = ga::plan_tasks(cl, b, counter, cost, owner, 4);
    const auto c = ga::plan_tasks(cl, b, counter, cost, owner, 4);
    const auto claimed = claimed_tasks(a);
    EXPECT_EQ(claimed.size(), owner.size());  // each task exactly once
    EXPECT_EQ(std::set<std::size_t>(claimed.begin(), claimed.end()).size(),
              owner.size());
    EXPECT_GT(a.n_fetches, 0u);
    EXPECT_GT(a.makespan_s, 0.0);
    ASSERT_FALSE(a.counter_homes.empty());
    ASSERT_EQ(a.counter_homes.size(), a.counter_owners.size());
    for (std::size_t r = 0; r < a.claims.size(); ++r) {
      ASSERT_EQ(a.claims[r].size(), c.claims[r].size());
      // Every rank ends with the terminal empty fetch that tells it
      // the work ran out.
      ASSERT_FALSE(a.claims[r].empty());
      EXPECT_EQ(a.claims[r].back().task, ga::TaskClaim::kNone);
      EXPECT_TRUE(a.claims[r].back().fetched);
      for (std::size_t i = 0; i < a.claims[r].size(); ++i) {
        EXPECT_EQ(a.claims[r][i].task, c.claims[r][i].task);
        EXPECT_EQ(a.claims[r][i].wait_s, c.claims[r][i].wait_s);
        if (a.claims[r][i].fetched)
          EXPECT_NE(a.claims[r][i].home, ga::TaskClaim::kNone);
      }
    }
  }
}

TEST(PlanTasks, BatchedDequeueAmortizesTheFetchStream) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "batched-plan");
  std::vector<std::size_t> owner(17, 0);
  for (std::size_t t = 0; t < owner.size(); ++t) owner[t] = t % 4;
  std::vector<double> cost(owner.size(), 1e-6);
  const auto flat =
      ga::plan_tasks(cl, ga::Balance::Counter, counter, cost, owner);
  const auto batched =
      ga::plan_tasks(cl, ga::Balance::Batched, counter, cost, owner, 4);
  // 17 tasks in batches of 4: exactly ceil(17/4) = 5 loaded fetches,
  // against 17 for the flat counter.
  EXPECT_EQ(flat.n_fetches, 17u);
  EXPECT_EQ(batched.n_fetches, 5u);
  // Fewer serialized fetch-and-adds -> less queueing at the host.
  EXPECT_LT(batched.total_wait_s, flat.total_wait_s);
  // Batch tails ride the head's ticket: no fetch, no wait.
  std::size_t tails = 0;
  for (const auto& list : batched.claims)
    for (const auto& c : list)
      if (!c.fetched) {
        EXPECT_EQ(c.wait_s, 0.0);
        EXPECT_NE(c.task, ga::TaskClaim::kNone);
        ++tails;
      }
  EXPECT_EQ(tails, 17u - 5u);
}

TEST(PlanTasks, PerNodePlanKeepsOneCounterPerDomain) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "pernode-plan");
  std::vector<std::size_t> owner(24, 0);
  for (std::size_t t = 0; t < owner.size(); ++t) owner[t] = t % 4;
  std::vector<double> cost(owner.size(), 1e-6);
  const auto plan =
      ga::plan_tasks(cl, ga::Balance::PerNode, counter, cost, owner);
  // One counter per failure domain, each homed inside its domain.
  ASSERT_EQ(plan.counter_homes.size(), cl.n_domains());
  for (std::size_t d = 0; d < cl.n_domains(); ++d)
    EXPECT_EQ(cl.domain_of(plan.counter_homes[d]), d);
  EXPECT_EQ(claimed_tasks(plan).size(), owner.size());
}

TEST(PlanTasks, TreePlanRefillsThroughTheHierarchy) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "tree-plan");
  std::vector<std::size_t> owner(21, 0);
  for (std::size_t t = 0; t < owner.size(); ++t) owner[t] = t % 4;
  std::vector<double> cost(owner.size(), 1e-6);
  const auto plan =
      ga::plan_tasks(cl, ga::Balance::Tree, counter, cost, owner, 2);
  // Only the root is preloaded: the level-1 nodes must have ascended
  // for refills, and those hops are surfaced for the metrics.
  EXPECT_GT(plan.tree_hops, 0u);
  EXPECT_EQ(claimed_tasks(plan).size(), owner.size());
  // Leaf + root counters, each homed inside the rank group it covers.
  ASSERT_EQ(plan.counter_homes.size(), 3u);  // two leaves + root
}

TEST(PlanTasks, AutoBatchFollowsTheClaimsPerRankRule) {
  EXPECT_EQ(ga::auto_batch(17, 4), 1u);      // small: stay fine-grained
  EXPECT_EQ(ga::auto_batch(320, 8), 5u);     // 320 / (8 * 8)
  EXPECT_EQ(ga::auto_batch(100000, 4), 64u); // clamped at 64
  EXPECT_EQ(ga::auto_batch(0, 0), 1u);       // degenerate inputs
}

TEST(PlanTasks, AutoBatchSurvivesKillStormsAndOversizedClusters) {
  // Regression: a plan taken after a full-cluster kill storm
  // (live_count == 0) or with fewer tasks than live ranks must stay
  // at the finest batch — never divide by zero or hand out batches
  // that claim past the range end.
  EXPECT_EQ(ga::auto_batch(100, 0), 1u);  // kill storm: nobody alive
  EXPECT_EQ(ga::auto_batch(3, 8), 1u);    // tail phase: tasks < ranks
  // Regression: 8 * live_ranks wrapped to zero for rank counts above
  // 2^61 and the division faulted; the stepwise form cannot wrap.
  EXPECT_EQ(ga::auto_batch(5, std::size_t{1} << 61), 1u);
  EXPECT_EQ(ga::auto_batch(~std::size_t{0}, std::size_t{1} << 61), 1u);
}

TEST(PlanTasks, ChooseBalanceNeverLosesToAFixedMode) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "choose-plan");
  // Heavily skewed static map: dynamic modes should win the DES.
  std::vector<std::size_t> owner(64, 0);
  std::vector<double> cost(owner.size(), 1e-3);
  const auto pick = core::choose_balance(cl, counter, cost, owner);
  EXPECT_NE(pick.balance, ga::Balance::Auto);
  for (ga::Balance b :
       {ga::Balance::Static, ga::Balance::Counter, ga::Balance::Steal,
        ga::Balance::Batched, ga::Balance::PerNode, ga::Balance::Tree}) {
    const auto plan = ga::plan_tasks(cl, b, counter, cost, owner);
    EXPECT_LE(pick.plan.makespan_s, plan.makespan_s)
        << "auto lost to " << ga::to_string(b);
  }
  // On this skew the winner must be a dynamic mode (static's makespan
  // is the whole task list on rank 0).
  EXPECT_NE(pick.balance, ga::Balance::Static);
}

// ---- schedule integration -------------------------------------------

TEST(PlanTasksTenants, SingleTenantDegeneratesToTheUntenantedPlan) {
  // A TenantSpec with one tenant and no quotas must not perturb the
  // claim order: the DRR dispenser over one queue is the canonical
  // counter, bit for bit (claims, waits, fetch counts).
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "tenant-degenerate");
  std::vector<std::size_t> owner(23, 0);
  std::vector<double> cost(owner.size());
  for (std::size_t t = 0; t < owner.size(); ++t) {
    owner[t] = t % 4;
    cost[t] = 1e-6 * static_cast<double>(1 + t % 5);
  }
  std::vector<std::size_t> tenant(owner.size(), 0);
  ga::TenantSpec spec;
  spec.tenant = tenant;
  spec.n_tenants = 1;
  for (ga::Balance b : {ga::Balance::Counter, ga::Balance::Batched}) {
    const auto plain =
        ga::plan_tasks(cl, b, counter, cost, owner, /*batch=*/4);
    const auto tenanted =
        ga::plan_tasks(cl, b, counter, cost, owner, spec, /*batch=*/4);
    ASSERT_EQ(plain.claims.size(), tenanted.claims.size());
    for (std::size_t r = 0; r < plain.claims.size(); ++r) {
      ASSERT_EQ(plain.claims[r].size(), tenanted.claims[r].size());
      for (std::size_t i = 0; i < plain.claims[r].size(); ++i) {
        EXPECT_EQ(plain.claims[r][i].task, tenanted.claims[r][i].task);
        EXPECT_EQ(plain.claims[r][i].wait_s, tenanted.claims[r][i].wait_s);
        EXPECT_EQ(plain.claims[r][i].fetched,
                  tenanted.claims[r][i].fetched);
      }
    }
    EXPECT_EQ(plain.n_fetches, tenanted.n_fetches);
    EXPECT_EQ(tenanted.quota_stalls, 0u);
    ASSERT_EQ(tenanted.tenant_makespan_s.size(), 1u);
  }
}

TEST(PlanTasksTenants, DeficitRoundRobinInterleavesTenantsFairly) {
  // Two tenants with equal aggregate work: tenant 0 has many cheap
  // tasks, tenant 1 few expensive ones. Global canonical order would
  // drain all of tenant 0 first (its tasks come first in the task
  // list); DRR must interleave so both finish within a modest ratio.
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "tenant-fairness");
  std::vector<std::size_t> tenant, owner;
  std::vector<double> cost;
  for (std::size_t t = 0; t < 40; ++t) {  // tenant 0: 40 x 1ms
    tenant.push_back(0);
    cost.push_back(1e-3);
  }
  for (std::size_t t = 0; t < 8; ++t) {  // tenant 1: 8 x 5ms
    tenant.push_back(1);
    cost.push_back(5e-3);
  }
  owner.assign(tenant.size(), 0);
  for (std::size_t t = 0; t < owner.size(); ++t) owner[t] = t % 4;
  ga::TenantSpec spec;
  spec.tenant = tenant;
  spec.n_tenants = 2;
  const auto plan = ga::plan_tasks(cl, ga::Balance::Counter, counter, cost,
                                   owner, spec);
  ASSERT_EQ(plan.tenant_makespan_s.size(), 2u);
  EXPECT_GT(plan.tenant_makespan_s[0], 0.0);
  EXPECT_GT(plan.tenant_makespan_s[1], 0.0);
  const double hi = std::max(plan.tenant_makespan_s[0],
                             plan.tenant_makespan_s[1]);
  const double lo = std::min(plan.tenant_makespan_s[0],
                             plan.tenant_makespan_s[1]);
  EXPECT_LT(hi / lo, 1.5);  // equal shares finish near-simultaneously
  // Exhaustive and exactly-once, as for every other mode.
  std::multiset<std::size_t> claimed;
  for (const auto& list : plan.claims)
    for (const auto& c : list)
      if (c.task != ga::TaskClaim::kNone) claimed.insert(c.task);
  EXPECT_EQ(claimed.size(), tenant.size());
  EXPECT_EQ(claimed.count(0), 1u);
}

TEST(PlanTasksTenants, QuotasAreNeverExceededAndStallInsteadOfWedging) {
  // Tight quotas: tenant 0 may hold two tasks in flight, tenant 1 one.
  // The DES must stall fetches rather than overshoot, and the reported
  // per-tenant peak must respect the caps exactly.
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "tenant-quota");
  const std::size_t n = 24;
  std::vector<std::size_t> tenant(n), owner(n);
  std::vector<double> cost(n, 1e-3), bytes(n, 100.0);
  for (std::size_t t = 0; t < n; ++t) {
    tenant[t] = t % 2;
    owner[t] = t % 4;
  }
  std::vector<double> quota = {200.0, 100.0};
  ga::TenantSpec spec;
  spec.tenant = tenant;
  spec.task_bytes = bytes;
  spec.quota_bytes = quota;
  spec.n_tenants = 2;
  const auto plan = ga::plan_tasks(cl, ga::Balance::Counter, counter, cost,
                                   owner, spec);
  ASSERT_EQ(plan.tenant_peak_bytes.size(), 2u);
  EXPECT_LE(plan.tenant_peak_bytes[0], quota[0]);
  EXPECT_LE(plan.tenant_peak_bytes[1], quota[1]);
  EXPECT_GT(plan.tenant_peak_bytes[0], 0.0);
  // Four ranks fetching against three total in-flight slots: somebody
  // must have stalled on a quota at least once.
  EXPECT_GT(plan.quota_stalls, 0u);
  std::multiset<std::size_t> claimed;
  for (const auto& list : plan.claims)
    for (const auto& c : list)
      if (c.task != ga::TaskClaim::kNone) claimed.insert(c.task);
  EXPECT_EQ(claimed.size(), n);  // quota stalls defer, never drop
}

TEST(PlanTasksTenants, OversizedTaskOrWrongModeIsRejected) {
  Cluster cl(sched_machine(2, 2), ExecutionMode::Simulate);
  ga::TaskCounter counter(cl, "tenant-reject");
  std::vector<std::size_t> tenant = {0, 0}, owner = {0, 1};
  std::vector<double> cost = {1e-3, 1e-3};
  std::vector<double> bytes = {300.0, 50.0}, quota = {200.0};
  ga::TenantSpec spec;
  spec.tenant = tenant;
  spec.task_bytes = bytes;
  spec.quota_bytes = quota;
  spec.n_tenants = 1;
  EXPECT_THROW(ga::plan_tasks(cl, ga::Balance::Counter, counter, cost,
                              owner, spec),
               fit::Error);
  ga::TenantSpec ok = spec;
  std::vector<double> fits = {100.0, 50.0};
  ok.task_bytes = fits;
  EXPECT_THROW(ga::plan_tasks(cl, ga::Balance::Steal, counter, cost, owner,
                              ok),
               fit::Error);
  EXPECT_NO_THROW(ga::plan_tasks(cl, ga::Balance::Counter, counter, cost,
                                 owner, ok));
}

TEST(TaskSched, StaticIsInertAndDeterministic) {
  auto p = sched_problem();
  auto ref = core::reference_transform(p);
  Cluster cl1(sched_machine(2, 2), ExecutionMode::Real);
  auto r1 = core::fused_inner_par_transform(p, cl1,
                                            sched_options(ga::Balance::Static));
  Cluster cl2(sched_machine(2, 2), ExecutionMode::Real);
  auto r2 = core::fused_inner_par_transform(p, cl2,
                                            sched_options(ga::Balance::Static));
  ASSERT_TRUE(r1.c.has_value());
  ASSERT_TRUE(r2.c.has_value());
  EXPECT_LT(r1.c->max_abs_diff(ref), 1e-9);
  EXPECT_EQ(r1.c->max_abs_diff(*r2.c), 0.0);       // run-to-run identical
  EXPECT_EQ(r1.stats.sim_time, r2.stats.sim_time);  // and in modeled time
  // Static pays no scheduling traffic and reports no dynamic activity.
  EXPECT_EQ(r1.stats.sched_claims, 0.0);
  EXPECT_EQ(r1.stats.sched_steals, 0.0);
  EXPECT_EQ(r1.stats.sched_counter_wait_s, 0.0);
  EXPECT_EQ(cl1.metrics().sum("sched.claims"), 0.0);
  EXPECT_EQ(cl1.metrics().sum("sched.steals"), 0.0);
  EXPECT_EQ(cl1.metrics().sum("sched.counter_waits"), 0.0);
}

TEST(TaskSched, DynamicModesAreBitIdenticalToStatic) {
  auto p = sched_problem();
  Cluster cls(sched_machine(2, 2), ExecutionMode::Real);
  auto rs = core::fused_inner_par_transform(
      p, cls, sched_options(ga::Balance::Static));
  ASSERT_TRUE(rs.c.has_value());

  for (ga::Balance b :
       {ga::Balance::Counter, ga::Balance::Steal, ga::Balance::Batched,
        ga::Balance::PerNode, ga::Balance::Tree, ga::Balance::Auto}) {
    SCOPED_TRACE(ga::to_string(b));
    Cluster cl(sched_machine(2, 2), ExecutionMode::Real);
    auto r = core::fused_inner_par_transform(p, cl, sched_options(b));
    ASSERT_TRUE(r.c.has_value());
    // Same tasks, same bodies, one writer per output tile per phase:
    // the result does not merely agree, it is bit-identical.
    EXPECT_EQ(r.c->max_abs_diff(*rs.c), 0.0);
    if (b != ga::Balance::Auto)  // Auto may legitimately pick Static
      EXPECT_GT(r.stats.sched_claims, 0.0);
    if (b == ga::Balance::Counter) {
      EXPECT_GT(cl.metrics().sum("sched.counter_waits"), 0.0);
      EXPECT_GE(r.stats.sched_counter_wait_s, 0.0);
      // Scheduling is not free: the counter round trips show up in
      // the modeled time.
      EXPECT_GT(r.stats.sim_time, 0.0);
    }
  }
}

TEST(TaskSched, DynamicBalancingBeatsStaticOnSkewedWork) {
  // Contiguous alpha chunks carry the triangular alpha >= beta weight
  // (several-fold between the lightest and heaviest chunk), and with
  // n_ac == nranks the static map (tk*n_ac + ac) % nranks pins each
  // chunk index to a fixed rank — the systematic skew Sec. 7.3's
  // NXTVAL counter absorbs.
  auto p = sched_problem(32, 2);
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 16;
  o.alpha_parallel = 6;
  o.alpha_chunking = core::ParOptions::AlphaChunking::Contiguous;
  o.gather_result = false;

  auto run = [&](ga::Balance b) {
    o.balance = b;
    Cluster cl(sched_machine(2, 3), ExecutionMode::Simulate);
    return core::fused_inner_par_transform(p, cl, o);
  };
  auto rs = run(ga::Balance::Static);
  auto rc = run(ga::Balance::Counter);
  auto rt = run(ga::Balance::Steal);
  EXPECT_GT(rs.stats.worst_imbalance, 1.2);  // the skew is real
  EXPECT_LT(rc.stats.worst_imbalance, rs.stats.worst_imbalance);
  EXPECT_LT(rt.stats.worst_imbalance, rs.stats.worst_imbalance);
  EXPECT_LT(rc.stats.sim_time, rs.stats.sim_time);
  EXPECT_LT(rt.stats.sim_time, rs.stats.sim_time);
  EXPECT_GT(rt.stats.sched_steals, 0.0);
  EXPECT_GT(rc.stats.sched_counter_wait_s, 0.0);
}

TEST(TaskSched, RecomputeScheduleStaysBitIdenticalUnderDynamicModes) {
  // The recompute baseline is the schedule whose phase ends in GA
  // accumulates — the op most sensitive to who executes a task. One
  // writer per (ta, tb, tc, td) tile per phase keeps every mode
  // bit-identical anyway.
  auto p = sched_problem();
  core::ParOptions o;
  o.tile = 4;
  auto run = [&](ga::Balance b) {
    o.balance = b;
    Cluster cl(sched_machine(2, 2), ExecutionMode::Real);
    return core::nwchem_recompute_par_transform(p, cl, o);
  };
  auto rs = run(ga::Balance::Static);
  ASSERT_TRUE(rs.c.has_value());
  for (ga::Balance b :
       {ga::Balance::Counter, ga::Balance::Steal, ga::Balance::Batched,
        ga::Balance::PerNode, ga::Balance::Tree}) {
    SCOPED_TRACE(ga::to_string(b));
    auto r = run(b);
    ASSERT_TRUE(r.c.has_value());
    EXPECT_EQ(r.c->max_abs_diff(*rs.c), 0.0);
    EXPECT_GT(r.stats.sched_claims, 0.0);
  }
}

TEST(TaskSched, MitigatedCountersCutTheFlatCounterWait) {
  // Same skewed workload the flat counter wins on imbalance but pays
  // per-claim round trips for: the mitigations must keep the balance
  // win while shrinking the scheduling cost (measured as summed
  // counter queueing).
  auto p = sched_problem(32, 2);
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 16;
  o.alpha_parallel = 6;
  o.alpha_chunking = core::ParOptions::AlphaChunking::Contiguous;
  o.gather_result = false;
  auto run = [&](ga::Balance b) {
    o.balance = b;
    Cluster cl(sched_machine(2, 3), ExecutionMode::Simulate);
    return core::fused_inner_par_transform(p, cl, o);
  };
  auto rs = run(ga::Balance::Static);
  auto rc = run(ga::Balance::Counter);
  auto rb = run(ga::Balance::Batched);
  auto rn = run(ga::Balance::PerNode);
  auto rt = run(ga::Balance::Tree);
  // Fewer serialized fetches (batch amortization) and split request
  // streams (per-node) both cut the total queueing time.
  EXPECT_GT(rb.stats.sched_counter_fetches, 0.0);
  EXPECT_LT(rb.stats.sched_counter_fetches, rc.stats.sched_counter_fetches);
  EXPECT_LT(rb.stats.sched_counter_wait_s, rc.stats.sched_counter_wait_s);
  EXPECT_LT(rn.stats.sched_counter_wait_s, rc.stats.sched_counter_wait_s);
  EXPECT_GT(rt.stats.sched_tree_hops, 0.0);
  // The mitigations still rebalance the skew.
  EXPECT_LT(rb.stats.worst_imbalance, rs.stats.worst_imbalance);
  EXPECT_LT(rn.stats.worst_imbalance, rs.stats.worst_imbalance);
}

TEST(TaskSched, AutoIsNeverWorseThanTheFixedModes) {
  auto p = sched_problem(32, 2);
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 16;
  o.alpha_parallel = 6;
  o.alpha_chunking = core::ParOptions::AlphaChunking::Contiguous;
  o.gather_result = false;
  auto run = [&](ga::Balance b) {
    o.balance = b;
    Cluster cl(sched_machine(2, 3), ExecutionMode::Simulate);
    return core::fused_inner_par_transform(p, cl, o).stats.sim_time;
  };
  double best = run(ga::Balance::Static);
  for (ga::Balance b :
       {ga::Balance::Counter, ga::Balance::Steal, ga::Balance::Batched,
        ga::Balance::PerNode, ga::Balance::Tree})
    best = std::min(best, run(b));
  const double auto_time = run(ga::Balance::Auto);
  // Auto picks per phase from the same DES the fixed modes replay, so
  // it can mix modes across phases; a small tolerance absorbs the gap
  // between the DES cost estimates and the replayed charges.
  EXPECT_LE(auto_time, best * 1.02);
}

// ---- faults ---------------------------------------------------------

TEST(TaskSchedFaults, MidDrainKillUnderStealIsAdoptedBitIdentically) {
  auto p = sched_problem();
  auto ref = core::reference_transform(p);
  const auto opt = sched_options(ga::Balance::Steal);

  Cluster clean(sched_machine(2, 2), ExecutionMode::Real);
  const auto want = core::fused_inner_par_transform(p, clean, opt);
  ASSERT_TRUE(want.c.has_value());

  // Phase 1 is "fused12 [l-slice 0]": the claim plan is drawn with
  // rank 1 alive, then the boundary kill fires before the phase body
  // runs — its queue is orphaned mid-drain.
  Cluster faulty(sched_machine(2, 2), ExecutionMode::Real);
  faulty.enable_recovery();
  FaultInjector inj;
  inj.schedule(kill_event(/*phase=*/1, /*rank=*/1));
  faulty.install_faults(inj);
  const auto got = core::fused_inner_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_LT(got.c->max_abs_diff(ref), 1e-9);
  EXPECT_EQ(got.c->max_abs_diff(*want.c), 0.0);  // bit-identical recovery
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.kills"), 1.0);
  EXPECT_GT(reg.sum("sched.orphans_adopted"), 0.0);
  EXPECT_TRUE(faulty.is_dead(1));
  // Adopted work is charged, not teleported: the survivor's run costs
  // more modeled time than the fault-free one.
  EXPECT_GT(faulty.sim_time(), clean.sim_time());
}

TEST(TaskSchedFaults, DeadCounterHomeIsReowned) {
  auto p = sched_problem();
  auto ref = core::reference_transform(p);
  const auto opt = sched_options(ga::Balance::Counter);

  Cluster faulty(sched_machine(2, 2), ExecutionMode::Real);
  // The counter for the first fused12 phase lives on a deterministic
  // (FNV-1a) home rank; kill exactly that rank at that phase.
  const std::size_t home =
      ga::TaskCounter(faulty, "fused12 [l-slice 0]").home();
  faulty.enable_recovery();
  FaultInjector inj;
  inj.schedule(kill_event(/*phase=*/1, home));
  faulty.install_faults(inj);
  const auto got = core::fused_inner_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_LT(got.c->max_abs_diff(ref), 1e-9);
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.kills"), 1.0);
  EXPECT_GE(reg.sum("sched.counter_reowns"), 1.0);
  // Later phases plan against the re-homed counter without incident.
  EXPECT_GT(reg.sum("sched.claims"), 0.0);
}

TEST(TaskSchedFaults, DeadPerNodeCounterHomeIsReowned) {
  // Kill the rank hosting failure domain 0's counter at the phase
  // boundary: the planned claims against it must re-resolve to the
  // survivor (Cluster::live_owner) and the result stays bit-identical.
  auto p = sched_problem();
  auto ref = core::reference_transform(p);
  const auto opt = sched_options(ga::Balance::PerNode);

  Cluster faulty(sched_machine(2, 2), ExecutionMode::Real);
  const std::size_t home =
      ga::TaskCounter(faulty, "fused12 [l-slice 0]").domain_home(0);
  faulty.enable_recovery();
  FaultInjector inj;
  inj.schedule(kill_event(/*phase=*/1, home));
  faulty.install_faults(inj);
  const auto got = core::fused_inner_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_LT(got.c->max_abs_diff(ref), 1e-9);
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.kills"), 1.0);
  EXPECT_GE(reg.sum("sched.counter_reowns"), 1.0);
  EXPECT_GT(reg.sum("sched.claims"), 0.0);
}

TEST(TaskSchedFaults, DeadTreeCounterHomeIsReowned) {
  // Same drill against the counter tree: kill the level-1 node of the
  // first rank group for the first fused12 phase.
  auto p = sched_problem();
  auto ref = core::reference_transform(p);
  const auto opt = sched_options(ga::Balance::Tree);

  Cluster faulty(sched_machine(2, 2), ExecutionMode::Real);
  const std::size_t home =
      ga::TaskCounter(faulty, "fused12 [l-slice 0]").tree_home(1, 0);
  faulty.enable_recovery();
  FaultInjector inj;
  inj.schedule(kill_event(/*phase=*/1, home));
  faulty.install_faults(inj);
  const auto got = core::fused_inner_par_transform(p, faulty, opt);
  ASSERT_TRUE(got.c.has_value());

  EXPECT_LT(got.c->max_abs_diff(ref), 1e-9);
  const auto& reg = faulty.metrics();
  EXPECT_EQ(reg.sum("fault.kills"), 1.0);
  EXPECT_GE(reg.sum("sched.counter_reowns"), 1.0);
  EXPECT_GT(reg.sum("sched.claims"), 0.0);
}

}  // namespace
