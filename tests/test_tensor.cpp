#include <gtest/gtest.h>

#include <set>

#include "tensor/irreps.hpp"
#include "tensor/matrix.hpp"
#include "tensor/packed.hpp"
#include "tensor/pairs.hpp"
#include "tensor/tensor4.hpp"
#include "tensor/tiling.hpp"
#include "util/error.hpp"

namespace {

using namespace fit::tensor;

TEST(Pairs, PackUnpackRoundTrip) {
  const std::size_t n = 23;
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const std::size_t p = pack_pair(i, j);
      EXPECT_LT(p, npairs(n));
      EXPECT_TRUE(seen.insert(p).second) << "pack not injective";
      const auto [ii, jj] = unpack_pair(p);
      EXPECT_EQ(ii, i);
      EXPECT_EQ(jj, j);
    }
  EXPECT_EQ(seen.size(), npairs(n));
}

TEST(Pairs, SymmetricPackIgnoresOrder) {
  EXPECT_EQ(pack_pair_sym(3, 7), pack_pair_sym(7, 3));
  EXPECT_EQ(pack_pair_sym(5, 5), pack_pair(5, 5));
}

TEST(Pairs, PackRequiresOrdered) {
  EXPECT_THROW(pack_pair(2, 5), fit::PreconditionError);
}

TEST(Pairs, UnpackLargeValues) {
  // Exercise the float estimate fix-up around triangular numbers.
  for (std::size_t p : {0ul, 1ul, 2ul, 5049ul, 5050ul, 5051ul, 1000000ul}) {
    const auto [i, j] = unpack_pair(p);
    EXPECT_EQ(pack_pair(i, j), p);
  }
}

TEST(Matrix, AccessAndBounds) {
  Matrix m(3, 4);
  m(2, 3) = 7.0;
  EXPECT_DOUBLE_EQ(m(2, 3), 7.0);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_THROW(m(3, 0), fit::PreconditionError);
  EXPECT_THROW(m(0, 4), fit::PreconditionError);
  m.fill(1.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
}

TEST(Tensor4, LayoutIsRowMajor) {
  Tensor4 t(2, 3, 4, 5);
  t(1, 2, 3, 4) = 9.0;
  EXPECT_DOUBLE_EQ(t.data()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0);
  EXPECT_EQ(t.size(), 120u);
  EXPECT_THROW(t(2, 0, 0, 0), fit::PreconditionError);
}

TEST(Irreps, TrivialAllowsEverything) {
  auto ir = Irreps::trivial(6);
  EXPECT_EQ(ir.order(), 1u);
  EXPECT_TRUE(ir.allowed(0, 1, 2, 3));
  EXPECT_TRUE(ir.is_contiguous());
}

TEST(Irreps, ContiguousBlocksCoverAllLabels) {
  auto ir = Irreps::contiguous(16, 4);
  EXPECT_TRUE(ir.is_contiguous());
  std::set<int> labels;
  for (std::size_t o = 0; o < 16; ++o) labels.insert(ir.of(o));
  EXPECT_EQ(labels.size(), 4u);
  // XOR closure property: allowed(a,b,c,d) iff xor == 0.
  EXPECT_TRUE(ir.allowed(0, 0, 15, 15));
  EXPECT_FALSE(ir.allowed(0, 0, 0, 15));
}

TEST(Irreps, RejectsNonPowerOfTwoOrder) {
  EXPECT_THROW(Irreps::contiguous(10, 3), fit::PreconditionError);
  EXPECT_THROW(Irreps({0, 1, 2}, 2), fit::PreconditionError);
}

TEST(PackedSizes, MatchTable1Asymptotics) {
  // For large n and uniform irreps, exact packed sizes approach
  // n^4/4, n^4/2, n^4/4, n^4/2, n^4/(4s).
  const std::size_t n = 64;
  for (unsigned s : {1u, 2u, 4u, 8u}) {
    auto ir = Irreps::contiguous(n, s);
    auto sz = packed_sizes(n, ir);
    const double n4 = static_cast<double>(n) * n * n * n;
    EXPECT_NEAR(static_cast<double>(sz.a) / (n4 / 4), 1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(sz.o1) / (n4 / 2), 1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(sz.o2) / (n4 / 4), 1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(sz.o3) / (n4 / 2), 1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(sz.c) / (n4 / (4 * s)), 1.0, 0.10);
  }
}

TEST(PackedSizes, UnfusedPeakIsO1PlusO2) {
  const std::size_t n = 32;
  auto ir = Irreps::trivial(n);
  auto sz = packed_sizes(n, ir);
  EXPECT_EQ(sz.unfused_peak(), sz.o1 + sz.a);  // |A|+|O1| == |O1|+|O2|
  EXPECT_EQ(sz.a + sz.o1, sz.o1 + sz.o2);      // since |A| == |O2|
  // Dominant term ~ 3n^4/4.
  const double n4 = static_cast<double>(n) * n * n * n;
  EXPECT_NEAR(static_cast<double>(sz.unfused_peak()) / (0.75 * n4), 1.0, 0.1);
}

TEST(PackedA, SymmetryInBothGroups) {
  const std::size_t n = 5;
  PackedA a(n);
  a.set(3, 1, 4, 2, 7.5);
  EXPECT_DOUBLE_EQ(a(3, 1, 4, 2), 7.5);
  EXPECT_DOUBLE_EQ(a(1, 3, 4, 2), 7.5);
  EXPECT_DOUBLE_EQ(a(3, 1, 2, 4), 7.5);
  EXPECT_DOUBLE_EQ(a(1, 3, 2, 4), 7.5);
  EXPECT_EQ(a.stored_elements(), npairs(n) * npairs(n));
}

TEST(TensorO1, SymmetryInKlOnly) {
  TensorO1 o1(4);
  o1.at(1, 2, 3, 0) = 2.0;
  EXPECT_DOUBLE_EQ(o1.at(1, 2, 0, 3), 2.0);
  // kl_row is contiguous over packed pairs.
  EXPECT_EQ(&o1.at(1, 2, 0, 0), o1.kl_row(1, 2));
  EXPECT_EQ(o1.stored_elements(), 4u * 4u * npairs(4));
}

TEST(PackedO2, SymmetryInBothGroups) {
  PackedO2 o2(4);
  o2.at(3, 1, 2, 0) = -1.0;
  EXPECT_DOUBLE_EQ(o2.at(1, 3, 0, 2), -1.0);
}

TEST(TensorO3, SymmetryInAbOnly) {
  TensorO3 o3(4);
  o3.at(2, 1, 3, 0) = 5.0;
  EXPECT_DOUBLE_EQ(o3.at(1, 2, 3, 0), 5.0);
  EXPECT_EQ(o3.stored_elements(), npairs(4) * 16u);
}

TEST(PackedC, SpatialBlockingStoresOnlyAllowed) {
  const std::size_t n = 8;
  auto ir = Irreps::contiguous(n, 2);
  PackedC c(n, ir);
  // Orbitals 0..3 irrep 0, 4..7 irrep 1. Pair (0,1) has irrep 0,
  // pair (4,1) has irrep 1.
  c.add(1, 0, 2, 0, 3.0);
  EXPECT_DOUBLE_EQ(c.get(1, 0, 2, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.get(0, 1, 0, 2), 3.0);  // packed symmetry
  // Forbidden entry reads as zero; nonzero writes throw; zero writes
  // are dropped.
  EXPECT_DOUBLE_EQ(c.get(1, 0, 4, 0), 0.0);
  EXPECT_THROW(c.add(1, 0, 4, 0, 1.0), fit::PreconditionError);
  EXPECT_NO_THROW(c.add(1, 0, 4, 0, 0.0));
  // Storage is the sum of per-irrep block squares == exact formula.
  EXPECT_EQ(c.stored_elements(), packed_sizes(n, ir).c);
}

TEST(PackedC, DiffAndNorm) {
  auto ir = Irreps::trivial(4);
  PackedC x(4, ir), y(4, ir);
  x.add(2, 1, 3, 0, 3.0);
  y.add(2, 1, 3, 0, 1.0);
  EXPECT_DOUBLE_EQ(x.max_abs_diff(y), 2.0);
  EXPECT_DOUBLE_EQ(y.norm2(), 1.0);
}

TEST(Tiling, CoverageAndEdges) {
  Tiling t(10, 3);
  EXPECT_EQ(t.ntiles(), 4u);
  EXPECT_EQ(t.lo(0), 0u);
  EXPECT_EQ(t.hi(3), 10u);
  EXPECT_EQ(t.len(3), 1u);
  EXPECT_EQ(t.tile_of(9), 3u);
  // Tiles partition the range.
  std::size_t covered = 0;
  for (std::size_t i = 0; i < t.ntiles(); ++i) covered += t.len(i);
  EXPECT_EQ(covered, 10u);
  EXPECT_THROW(Tiling(10, 0), fit::PreconditionError);
  EXPECT_THROW(t.tile_of(10), fit::PreconditionError);
}

TEST(Tiling, ExactDivision) {
  Tiling t(12, 3);
  EXPECT_EQ(t.ntiles(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t.len(i), 3u);
}

}  // namespace

// ---- Irregular and irrep-aligned tilings ----------------------------

namespace {

using fit::tensor::Irreps;
using fit::tensor::Tiling;

TEST(TilingIrregular, ExplicitBoundaries) {
  auto t = Tiling::with_boundaries({0, 3, 4, 10});
  EXPECT_EQ(t.extent(), 10u);
  EXPECT_EQ(t.ntiles(), 3u);
  EXPECT_EQ(t.len(0), 3u);
  EXPECT_EQ(t.len(1), 1u);
  EXPECT_EQ(t.len(2), 6u);
  EXPECT_EQ(t.max_width(), 6u);
  EXPECT_EQ(t.tile_of(0), 0u);
  EXPECT_EQ(t.tile_of(3), 1u);
  EXPECT_EQ(t.tile_of(4), 2u);
  EXPECT_EQ(t.tile_of(9), 2u);
  EXPECT_THROW(Tiling::with_boundaries({0, 3, 3, 10}),
               fit::PreconditionError);
  EXPECT_THROW(Tiling::with_boundaries({0}), fit::PreconditionError);
}

TEST(TilingIrregular, IrrepAlignedTilesArePure) {
  // Every tile of an irrep-aligned tiling contains orbitals of exactly
  // one irrep, for a sweep of (n, order, width) combinations.
  for (std::size_t n : {16u, 23u, 46u, 87u, 149u}) {
    for (unsigned order : {1u, 2u, 4u, 8u}) {
      for (std::size_t w : {1u, 2u, 5u, 8u, 100u}) {
        auto ir = Irreps::contiguous(n, order);
        auto t = Tiling::irrep_aligned(ir, w);
        EXPECT_EQ(t.extent(), n);
        std::size_t covered = 0;
        for (std::size_t ti = 0; ti < t.ntiles(); ++ti) {
          EXPECT_LE(t.len(ti), w);
          covered += t.len(ti);
          for (std::size_t o = t.lo(ti); o < t.hi(ti); ++o)
            EXPECT_EQ(ir.of(o), ir.of(t.lo(ti)))
                << "n=" << n << " order=" << order << " w=" << w;
        }
        EXPECT_EQ(covered, n);
      }
    }
  }
}

TEST(TilingIrregular, IrrepAlignedBalanced) {
  // Chunks within a block differ by at most one element.
  auto ir = Irreps::contiguous(50, 2);  // blocks of 25
  auto t = Tiling::irrep_aligned(ir, 8);
  for (std::size_t ti = 0; ti < t.ntiles(); ++ti) {
    EXPECT_GE(t.len(ti), 6u);
    EXPECT_LE(t.len(ti), 9u);
  }
}

TEST(TilingIrregular, TileOfMatchesRanges) {
  auto ir = Irreps::contiguous(37, 4);
  auto t = Tiling::irrep_aligned(ir, 5);
  for (std::size_t o = 0; o < 37; ++o) {
    const std::size_t ti = t.tile_of(o);
    EXPECT_GE(o, t.lo(ti));
    EXPECT_LT(o, t.hi(ti));
  }
}

}  // namespace
