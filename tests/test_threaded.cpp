// Threaded executor: rank bodies of each phase run on a host thread
// pool. Counters must be exactly deterministic; numerical results
// agree with the serial executor to accumulation-order tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "chem/molecule.hpp"
#include "core/problem.hpp"
#include "core/schedules_par.hpp"
#include "core/schedules_seq.hpp"
#include "ga/global_array.hpp"
#include "runtime/cluster.hpp"
#include "runtime/machine.hpp"

namespace {

using namespace fit;
using runtime::Cluster;
using runtime::ExecutionMode;
using runtime::MachineConfig;

MachineConfig machine(std::size_t nodes, std::size_t rpn) {
  MachineConfig m;
  m.name = "threaded-test";
  m.n_nodes = nodes;
  m.ranks_per_node = rpn;
  m.mem_per_node_bytes = 64e6;
  return m;
}

TEST(Threaded, AllRanksExecuteExactlyOnce) {
  Cluster cl(machine(2, 8), ExecutionMode::Simulate, /*host_threads=*/4);
  std::vector<std::atomic<int>> hits(cl.n_ranks());
  cl.run_phase("count", [&](runtime::RankCtx& ctx) {
    hits[ctx.rank()].fetch_add(1);
    ctx.charge_flops(1e9);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_NEAR(cl.totals().flops, 1e9 * double(cl.n_ranks()), 1);
}

TEST(Threaded, CountersMatchSerialExactly) {
  auto p = core::make_problem(chem::custom_molecule("thr", 12, 2, 5));
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 3;
  o.gather_result = false;
  Cluster serial(machine(2, 2), ExecutionMode::Simulate, 1);
  auto rs = core::fused_inner_par_transform(p, serial, o);
  Cluster threaded(machine(2, 2), ExecutionMode::Simulate, 4);
  auto rt = core::fused_inner_par_transform(p, threaded, o);
  EXPECT_DOUBLE_EQ(rs.stats.flops, rt.stats.flops);
  EXPECT_DOUBLE_EQ(rs.stats.remote_bytes, rt.stats.remote_bytes);
  EXPECT_DOUBLE_EQ(rs.stats.local_bytes, rt.stats.local_bytes);
  EXPECT_DOUBLE_EQ(rs.stats.integral_evals, rt.stats.integral_evals);
  EXPECT_NEAR(rs.stats.sim_time, rt.stats.sim_time, 1e-12);
  EXPECT_DOUBLE_EQ(rs.stats.peak_global_bytes, rt.stats.peak_global_bytes);
}

TEST(Threaded, RealModeMatchesReference) {
  auto p = core::make_problem(chem::custom_molecule("thr2", 12, 2, 5));
  auto ref = core::reference_transform(p);
  for (auto schedule :
       {&core::unfused_par_transform, &core::fused_par_transform,
        &core::fused_inner_par_transform}) {
    core::ParOptions o;
    o.tile = 4;
    o.tile_l = 3;
    Cluster cl(machine(2, 4), ExecutionMode::Real, /*host_threads=*/4);
    auto r = schedule(p, cl, o);
    ASSERT_TRUE(r.c.has_value());
    EXPECT_LT(r.c->max_abs_diff(ref), 1e-9);
  }
}

TEST(Threaded, ConcurrentAccumulateIsAtomic) {
  // All ranks accumulate into the same tile concurrently; the sum must
  // be exact (the acc path is serialized per array).
  Cluster cl(machine(2, 8), ExecutionMode::Real, /*host_threads=*/8);
  std::vector<tensor::Tiling> dims = {tensor::Tiling(4, 4)};
  ga::GlobalArray a(cl, "acc", dims);
  const std::vector<std::size_t> coord = {0};
  const int reps = 50;
  cl.run_phase("acc", [&](runtime::RankCtx& ctx) {
    std::vector<double> buf = {1.0, 2.0, 3.0, 4.0};
    for (int i = 0; i < reps; ++i) a.acc(ctx, coord, buf.data());
  });
  const double factor = double(reps) * double(cl.n_ranks());
  EXPECT_DOUBLE_EQ(a.peek(std::vector<std::size_t>{0}), 1.0 * factor);
  EXPECT_DOUBLE_EQ(a.peek(std::vector<std::size_t>{3}), 4.0 * factor);
}

TEST(Threaded, ExceptionsPropagateToCaller) {
  auto m = machine(1, 8);
  m.local_scratch_bytes = 64;
  Cluster cl(m, ExecutionMode::Simulate, 4);
  EXPECT_THROW(
      cl.run_phase("oom",
                   [&](runtime::RankCtx& ctx) {
                     runtime::RankBuffer big(ctx, 1000, "too big");
                   }),
      fit::OutOfMemoryError);
}

TEST(Threaded, HostThreadsClampedToHardware) {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  // An absurd request is clamped so timing benches never oversubscribe.
  Cluster big(machine(1, 4), ExecutionMode::Simulate, 10000);
  EXPECT_LE(big.host_threads(), hw);
  EXPECT_GE(big.host_threads(), 1u);
  // A serial request stays serial.
  Cluster one(machine(1, 4), ExecutionMode::Simulate, 1);
  EXPECT_EQ(one.host_threads(), 1u);
}

TEST(Threaded, FourindexThreadsEnvOverridesRequest) {
  // FOURINDEX_THREADS takes precedence over the constructor argument
  // (still clamped to the hardware, so expect exactly 1 when set to 1).
  ASSERT_EQ(setenv("FOURINDEX_THREADS", "1", /*overwrite=*/1), 0);
  Cluster cl(machine(1, 4), ExecutionMode::Simulate, 8);
  unsetenv("FOURINDEX_THREADS");
  EXPECT_EQ(cl.host_threads(), 1u);
}

TEST(Threaded, HybridEndToEnd) {
  auto p = core::make_problem(chem::custom_molecule("thr3", 16, 4, 5));
  auto ref = core::reference_transform(p);
  Cluster cl(machine(2, 4), ExecutionMode::Real, 3);
  core::ParOptions o;
  o.tile = 4;
  o.tile_l = 4;
  auto r = core::hybrid_transform(p, cl, o);
  ASSERT_TRUE(r.c.has_value());
  EXPECT_LT(r.c->max_abs_diff(ref), 1e-9);
}

}  // namespace
