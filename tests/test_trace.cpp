#include <gtest/gtest.h>

#include <cmath>

#include "bounds/matmul_bounds.hpp"
#include "bounds/transform_bounds.hpp"
#include "tensor/packed.hpp"
#include "tensor/pairs.hpp"
#include "trace/kernels.hpp"
#include "trace/memory_sim.hpp"

namespace {

using namespace fit;
using trace::make_addr;
using trace::MemorySim;

TEST(MemorySim, HitsAndMisses) {
  MemorySim sim(2);
  sim.read(1);
  sim.read(1);
  EXPECT_EQ(sim.loads(), 1u);
  sim.read(2);
  sim.read(3);  // evicts 1 (clean, no store)
  EXPECT_EQ(sim.loads(), 3u);
  EXPECT_EQ(sim.stores(), 0u);
  sim.read(1);  // miss again
  EXPECT_EQ(sim.loads(), 4u);
}

TEST(MemorySim, LruOrderRespectsRecency) {
  MemorySim sim(2);
  sim.read(1);
  sim.read(2);
  sim.read(1);  // 1 is now most recent
  sim.read(3);  // should evict 2
  sim.read(1);  // hit
  EXPECT_EQ(sim.loads(), 3u);
}

TEST(MemorySim, DirtyEvictionStores) {
  MemorySim sim(1);
  sim.write(1, /*fresh=*/true);
  sim.read(2);  // evicts dirty 1 -> one store
  EXPECT_EQ(sim.stores(), 1u);
  EXPECT_EQ(sim.loads(), 1u);
}

TEST(MemorySim, NonFreshWriteLoadsFirst) {
  MemorySim sim(4);
  sim.write(1, /*fresh=*/false);  // read-modify-write: load
  EXPECT_EQ(sim.loads(), 1u);
  sim.write(1, /*fresh=*/false);  // resident: free
  EXPECT_EQ(sim.loads(), 1u);
}

TEST(MemorySim, DiscardSuppressesWriteback) {
  MemorySim sim(2);
  sim.write(1, /*fresh=*/true);
  sim.discard(1);
  sim.flush();
  EXPECT_EQ(sim.stores(), 0u);
}

TEST(MemorySim, FlushWritesDirtyOnce) {
  MemorySim sim(4);
  sim.write(1, true);
  sim.write(2, true);
  sim.read(3);
  sim.flush();
  EXPECT_EQ(sim.stores(), 2u);
  sim.flush();  // idempotent
  EXPECT_EQ(sim.stores(), 2u);
}

TEST(MemorySim, RejectsZeroCapacity) {
  EXPECT_THROW(MemorySim(0), fit::PreconditionError);
}

TEST(TraceMatmul, UntiledBlowupAndTiledEfficiency) {
  // Sec. 2.3: with S < N^2, the untiled version streams B N times
  // (~N^3 loads) while the tiled version attains ~2N^3/sqrt(S/3).
  const std::size_t n = 48;
  const std::size_t s = 800;  // < n^2 = 2304
  auto untiled = trace::trace_matmul_untiled(n, n, n, s);
  const double n3 = static_cast<double>(n) * n * n;
  EXPECT_GT(static_cast<double>(untiled.loads), 0.8 * n3);

  const std::size_t t = 16;  // 3*t^2 = 768 <= s
  auto tiled = trace::trace_matmul_tiled(n, n, n, t, s);
  EXPECT_LT(tiled.io() * 4, untiled.io());
  // Above the Dongarra lower bound, as any valid schedule must be.
  EXPECT_GE(static_cast<double>(tiled.io()),
            bounds::matmul_lb_dongarra(n, n, n, s) * 0.99);
}

TEST(TraceMatmul, TiledMeetsTwoNCubedOverT) {
  // The C-block-resident scheme: loads = 2 n^3 / t, stores = n^2,
  // exactly, when the block plus stream segments fit (t^2 + 2t <= s).
  const std::size_t n = 24;
  for (std::size_t t : {4u, 8u, 12u}) {
    const std::size_t s = t * t + 2 * t + 2;
    auto r = trace::trace_matmul_tiled(n, n, n, t, s);
    EXPECT_EQ(r.loads, 2 * n * n * n / t) << "t=" << t;
    EXPECT_EQ(r.stores, n * n);
  }
}

TEST(TraceContraction, Listing5MeetsTightBound) {
  // C[a,m] = A[i,m] B[a,i]: with S >= na*ni + ni + 1 the I/O equals
  // |A| + |B| + |C| exactly.
  const std::size_t na = 8, ni = 8, nm = 64;
  const std::size_t s = na * ni + ni + 8;
  auto r = trace::trace_contraction(na, ni, nm, s);
  EXPECT_EQ(r.loads, ni * nm + na * ni);
  EXPECT_EQ(r.stores, na * nm);
}

TEST(TraceContraction, BelowThresholdExceedsBound) {
  const std::size_t na = 8, ni = 8, nm = 64;
  auto r = trace::trace_contraction(na, ni, nm, /*s=*/16);
  EXPECT_GT(r.loads, ni * nm + na * ni);
}

TEST(TraceFusedPair, Listing6MeetsTightBound) {
  // Dense fused pair: I/O = |A| + |C| + |B1| + |B2| = 2n^4 + 2n^2
  // when S >= 3n^2 + n + 1.
  const std::size_t n = 6;
  const std::size_t n4 = n * n * n * n;
  const std::size_t s = 3 * n * n + n + 8;
  auto r = trace::trace_fused_pair_dense(n, s);
  EXPECT_EQ(r.loads, n4 + 2 * n * n);
  EXPECT_EQ(r.stores, n4);
}

TEST(TraceSchedules, UnfusedMatchesIoOptWithPackedSizes) {
  const std::size_t n = 10;
  const std::size_t np = tensor::npairs(n);
  // Generous fast memory (>= 3n^2-ish streams) but << tensor sizes.
  const std::size_t s = 8 * n * n;
  auto r = trace::trace_unfused_schedule(n, s);
  const auto sz = tensor::packed_sizes(n, tensor::Irreps::trivial(n));
  // io_opt(op1/2/3/4) with exact packed sizes, plus B traffic (4n^2).
  const double expect =
      static_cast<double>(sz.a + 2 * sz.o1 + 2 * sz.o2 + 2 * sz.o3 + sz.c) +
      4.0 * n * n;
  EXPECT_NEAR(static_cast<double>(r.io()), expect, 0.02 * expect);
  (void)np;
}

TEST(TraceSchedules, Fused12_34MatchesIoOpt) {
  const std::size_t n = 10;
  const std::size_t s = 8 * n * n;
  auto r = trace::trace_fused12_34_schedule(n, s);
  const auto sz = tensor::packed_sizes(n, tensor::Irreps::trivial(n));
  const double expect =
      static_cast<double>(sz.a + 2 * sz.o2 + sz.c) + 4.0 * n * n;
  EXPECT_NEAR(static_cast<double>(r.io()), expect, 0.02 * expect);
}

TEST(TraceSchedules, Theorem52OrderHoldsInMeasurement) {
  const std::size_t n = 10;
  const std::size_t s = 8 * n * n;
  auto unf = trace::trace_unfused_schedule(n, s);
  auto f12 = trace::trace_fused12_34_schedule(n, s);
  EXPECT_LT(f12.io(), unf.io());
}

TEST(TraceSchedules, Fused1234OnTheFlyIsJustCPlusB) {
  // Sec. 7.1: with A produced on the fly and S >= |C| + 2n^3, the
  // external I/O collapses to the C write-back (plus B reads).
  const std::size_t n = 8;
  const auto sz = tensor::packed_sizes(n, tensor::Irreps::trivial(n));
  const std::size_t s = sz.c + 3 * n * n * n;
  auto r = trace::trace_fused1234_schedule(n, s, /*on_the_fly_a=*/true);
  EXPECT_EQ(r.stores, sz.c);
  EXPECT_EQ(r.loads, 4u * n * n);  // B1..B4 only
}

TEST(TraceSchedules, Fused1234LoadedAEqualsBrokenSymmetryVolume) {
  const std::size_t n = 8;
  const auto sz = tensor::packed_sizes(n, tensor::Irreps::trivial(n));
  const std::size_t s = sz.c + 3 * n * n * n;
  auto r = trace::trace_fused1234_schedule(n, s, /*on_the_fly_a=*/false);
  // A loads: packed (ij) x full (k, l) = np * n^2 elements, once each.
  EXPECT_EQ(r.loads, tensor::npairs(n) * n * n + 4u * n * n);
  EXPECT_EQ(r.stores, sz.c);
}

TEST(TraceSchedules, Theorem62NecessaryConditionVisible) {
  // Below S = |C| the fully fused schedule can no longer keep the
  // output resident: measured I/O blows up by orders of magnitude.
  const std::size_t n = 8;
  const auto sz = tensor::packed_sizes(n, tensor::Irreps::trivial(n));
  const std::size_t s_ok = sz.c + 3 * n * n * n;
  const std::size_t s_small = sz.c / 2;
  auto ok = trace::trace_fused1234_schedule(n, s_ok, true);
  auto small = trace::trace_fused1234_schedule(n, s_small, true);
  EXPECT_GT(small.io(), 3 * ok.io());
}

}  // namespace
