#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

TEST(Error, RequireThrowsPrecondition) {
  EXPECT_THROW(FIT_REQUIRE(false, "boom " << 42), fit::PreconditionError);
  EXPECT_NO_THROW(FIT_REQUIRE(true, "fine"));
}

TEST(Error, CheckThrowsInternal) {
  EXPECT_THROW(FIT_CHECK(false, "bug"), fit::InternalError);
}

TEST(Error, MessageContainsContext) {
  try {
    FIT_REQUIRE(1 == 2, "value was " << 7);
    FAIL() << "should have thrown";
  } catch (const fit::PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("value was 7"), std::string::npos);
  }
}

TEST(Error, FaultTaxonomyDerivesFromError) {
  // Every recovery-related exception is a fit::Error, so a single
  // catch (const fit::Error&) at the driver level is sufficient.
  EXPECT_THROW(throw fit::FaultError("rank died"), fit::Error);
  EXPECT_THROW(throw fit::TimeoutError("watchdog"), fit::Error);
  EXPECT_THROW(throw fit::CheckpointError("no pfs"), fit::Error);
  EXPECT_THROW(throw fit::OutOfMemoryError("oom"), fit::Error);
}

TEST(Error, FaultTaxonomyIsDistinguishable) {
  // The three recovery errors are siblings, not subtypes of each
  // other: catching one must not swallow the others.
  try {
    throw fit::FaultError("exhausted retries");
  } catch (const fit::TimeoutError&) {
    FAIL() << "FaultError caught as TimeoutError";
  } catch (const fit::CheckpointError&) {
    FAIL() << "FaultError caught as CheckpointError";
  } catch (const fit::FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos);
  }
  try {
    throw fit::CheckpointError("rank death with no recovery enabled");
  } catch (const fit::FaultError&) {
    FAIL() << "CheckpointError caught as FaultError";
  } catch (const fit::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("recovery"), std::string::npos);
  }
}

TEST(Error, StdExceptionCatchSeesTaxonomy) {
  // what() survives a catch through the std::exception base.
  try {
    throw fit::TimeoutError("phase c2 watchdog: 3.5s > 2.5s budget");
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}

TEST(Rng, Deterministic) {
  fit::SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  fit::SplitMix64 a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  fit::SplitMix64 g(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = g.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  fit::SplitMix64 g(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(g.next_below(17), 17u);
}

TEST(Rng, HashToUnitIsPure) {
  EXPECT_EQ(fit::hash_to_unit(3, 5, 7), fit::hash_to_unit(3, 5, 7));
  EXPECT_NE(fit::hash_to_unit(3, 5, 7), fit::hash_to_unit(3, 5, 8));
  const double v = fit::hash_to_unit(12, 34, 56);
  EXPECT_GE(v, -1.0);
  EXPECT_LT(v, 1.0);
}

TEST(Stats, BasicMoments) {
  fit::RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, Imbalance) {
  fit::RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.imbalance(), 1.5);
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(fit::human_bytes(512), "512 B");
  EXPECT_EQ(fit::human_bytes(1024), "1.00 KB");
  EXPECT_EQ(fit::human_bytes(1536), "1.50 KB");
  EXPECT_EQ(fit::human_bytes(1024.0 * 1024 * 1024), "1.00 GB");
}

TEST(Format, HumanCount) {
  EXPECT_EQ(fit::human_count(999), "999");
  EXPECT_EQ(fit::human_count(1500), "1.50K");
  EXPECT_EQ(fit::human_count(2.5e6), "2.50M");
}

TEST(Format, Table) {
  fit::TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str("demo");
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), fit::PreconditionError);
}

}  // namespace

// ---- Logging ---------------------------------------------------------

#include "util/logging.hpp"

namespace {

TEST(Logging, LevelRoundTrip) {
  const auto saved = fit::log_level();
  fit::set_log_level(fit::LogLevel::Error);
  EXPECT_EQ(fit::log_level(), fit::LogLevel::Error);
  fit::set_log_level(saved);
}

TEST(Logging, ParseNames) {
  using fit::LogLevel;
  EXPECT_EQ(fit::parse_log_level("debug", LogLevel::Off), LogLevel::Debug);
  EXPECT_EQ(fit::parse_log_level("warn", LogLevel::Off), LogLevel::Warn);
  EXPECT_EQ(fit::parse_log_level("bogus", LogLevel::Info), LogLevel::Info);
}

TEST(Logging, BelowThresholdIsNotEvaluated) {
  // The message expression must not run when filtered out.
  const auto saved = fit::log_level();
  fit::set_log_level(fit::LogLevel::Off);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "x";
  };
  FIT_LOG_DEBUG("value " << expensive());
  EXPECT_EQ(evaluations, 0);
  fit::set_log_level(saved);
}

}  // namespace

// ---- Args ------------------------------------------------------------

#include "util/args.hpp"

namespace {

TEST(Args, AllForms) {
  // A bare flag consumes a following non-option token as its value,
  // so trailing flags and leading positionals keep forms unambiguous.
  const char* argv[] = {"prog", "--n=32",  "--tile", "8",
                        "positional1", "77", "--verbose"};
  fit::Args args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get_int("n", 0), 32);
  EXPECT_EQ(args.get_int("tile", 0), 8);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "positional1");
  EXPECT_EQ(args.positional_int(1, -1), 77);
  EXPECT_EQ(args.positional_int(5, -1), -1);
}

TEST(Args, DoubleValues) {
  const char* argv[] = {"prog", "--scale=2.5"};
  fit::Args args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double("other", 1.5), 1.5);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  fit::util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const std::size_t n = 100;
  std::vector<std::atomic<int>> hits(n);
  pool.run_tasks(n, [&](std::size_t t) { hits[t].fetch_add(1); });
  for (std::size_t t = 0; t < n; ++t) EXPECT_EQ(hits[t].load(), 1);
  // The pool is reusable: a second job on the same workers.
  std::atomic<int> total{0};
  pool.run_tasks(7, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 7);
}

TEST(ThreadPool, SerialPoolNeedsNoWorkers) {
  fit::util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int sum = 0;
  pool.run_tasks(5, [&](std::size_t t) { sum += static_cast<int>(t); });
  EXPECT_EQ(sum, 10);
}

TEST(ThreadPool, NestedRunTasksDegradesToInline) {
  fit::util::ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.run_tasks(8, [&](std::size_t) {
    EXPECT_TRUE(fit::util::ThreadPool::on_worker());
    // Re-entering the pool from a task must not deadlock.
    pool.run_tasks(3, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 24);
  EXPECT_FALSE(fit::util::ThreadPool::on_worker());
}

TEST(ThreadPool, FirstExceptionPropagates) {
  fit::util::ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.run_tasks(16, [&](std::size_t t) {
      executed.fetch_add(1);
      if (t == 5) throw std::runtime_error("task 5 failed");
    });
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 5 failed");
  }
  // All claimed tasks ran to completion before the rethrow.
  EXPECT_EQ(executed.load(), 16);
}

TEST(ThreadPool, ParallelForCoversRangeInChunks) {
  fit::util::ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, 8, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(fit::util::ThreadPool::default_thread_count(), 1u);
  EXPECT_GE(fit::util::ThreadPool::shared().size(), 1u);
}

}  // namespace

// ---- Strict parsing --------------------------------------------------

#include <cstdlib>

#include "util/parse.hpp"

namespace {

TEST(Parse, IntAcceptsWholeNumbersOnly) {
  using fit::util::parse_int;
  EXPECT_EQ(parse_int("8"), 8);
  EXPECT_EQ(parse_int("+8"), 8);
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(Parse, IntRejectsPrefixSemantics) {
  // The historical strtol bug: every one of these used to "parse".
  using fit::util::parse_int;
  EXPECT_FALSE(parse_int("8abc").has_value());
  EXPECT_FALSE(parse_int("8 ").has_value());
  EXPECT_FALSE(parse_int(" 8").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("3.5").has_value());
  EXPECT_FALSE(parse_int("0x10").has_value());
  EXPECT_FALSE(parse_int("+").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999999").has_value());
}

TEST(Parse, DoubleAcceptsDecimalAndScientific) {
  using fit::util::parse_double;
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-0.5").value(), -0.5);
  EXPECT_DOUBLE_EQ(parse_double("1e-3").value(), 1e-3);
  EXPECT_DOUBLE_EQ(parse_double("7").value(), 7.0);
}

TEST(Parse, DoubleRejectsGarbageAndNonFinite) {
  using fit::util::parse_double;
  EXPECT_FALSE(parse_double("2.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double(" 1.0").has_value());
  EXPECT_FALSE(parse_double("1.0 ").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("inf").has_value());
}

TEST(Parse, EnvSizeFallsBackLoudlyNotByTruncating) {
  const char* var = "FOURINDEX_TEST_ENV_SIZE";
  ::setenv(var, "8", 1);
  EXPECT_EQ(fit::util::env_size(var, 3), 8u);
  // The motivating bug: "8abc" must NOT become 8.
  ::setenv(var, "8abc", 1);
  EXPECT_EQ(fit::util::env_size(var, 3), 3u);
  ::setenv(var, "0", 1);  // below min=1
  EXPECT_EQ(fit::util::env_size(var, 3), 3u);
  ::setenv(var, "-2", 1);
  EXPECT_EQ(fit::util::env_size(var, 3), 3u);
  ::unsetenv(var);
  EXPECT_EQ(fit::util::env_size(var, 5), 5u);
}

TEST(Parse, EnvSizeStrictThrowsInsteadOfFallingBack) {
  const char* var = "FOURINDEX_TEST_ENV_SIZE_STRICT";
  ::setenv(var, "8", 1);
  EXPECT_EQ(fit::util::env_size_strict(var, 3), 8u);
  // Regression: a negative value must never survive to the size_t
  // cast — reject it through the typed-error path, not a warning.
  ::setenv(var, "-2", 1);
  EXPECT_THROW(fit::util::env_size_strict(var, 3), fit::ParseError);
  EXPECT_THROW(fit::util::env_size_strict(var, 3, /*min=*/0),
               fit::ParseError);
  ::setenv(var, "8abc", 1);
  EXPECT_THROW(fit::util::env_size_strict(var, 3), fit::ParseError);
  ::setenv(var, "0", 1);  // below the default min=1
  EXPECT_THROW(fit::util::env_size_strict(var, 3), fit::ParseError);
  EXPECT_EQ(fit::util::env_size_strict(var, 3, /*min=*/0), 0u);
  ::unsetenv(var);
  EXPECT_EQ(fit::util::env_size_strict(var, 5), 5u);
}

TEST(Args, MalformedValuesThrowTypedErrors) {
  const char* argv[] = {"prog", "--tile=8abc", "--scale=2.5x", "12z"};
  fit::Args args(4, const_cast<char**>(argv));
  EXPECT_THROW(args.get_int("tile", 0), fit::ParseError);
  EXPECT_THROW(args.get_double("scale", 0.0), fit::ParseError);
  EXPECT_THROW(args.positional_int(0, -1), fit::ParseError);
  // Absent keys still fall back instead of throwing.
  EXPECT_EQ(args.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.positional_int(5, -1), -1);
}

TEST(Args, ParseErrorIsPartOfTheTaxonomy) {
  const char* argv[] = {"prog", "--n=1e99999"};
  fit::Args args(2, const_cast<char**>(argv));
  // Catchable at the driver level like every other fit error.
  EXPECT_THROW(args.get_double("n", 0.0), fit::Error);
}

}  // namespace
